package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Prometheus text exposition validity checks (format 0.0.4), driven through
// the real HTTP surface: every line of /metrics and /debug/statements.prom
// must parse, TYPE/HELP comments must be unique per family and precede that
// family's samples, label blocks must be well-formed with sorted keys, and
// histogram _bucket series must be cumulative and consistent with _count.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed metric line.
type promSample struct {
	name   string
	labels []string // "key=value" pairs, raw order
	value  float64
}

// parsePromLine parses `name{k="v",...} value` (the exposition subset this
// repo emits: no timestamps, no escaped newlines inside values).
func parsePromLine(line string) (promSample, error) {
	var s promSample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator")
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !metricNameRe.MatchString(s.name) {
		return s, fmt.Errorf("bad metric name %q", s.name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label block")
		}
		block := rest[1:end]
		rest = rest[end+1:]
		for _, pair := range splitLabels(block) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return s, fmt.Errorf("label %q has no =", pair)
			}
			if !labelNameRe.MatchString(k) {
				return s, fmt.Errorf("bad label name %q", k)
			}
			if _, err := strconv.Unquote(v); err != nil {
				return s, fmt.Errorf("label %s value %s not a quoted string: %v", k, v, err)
			}
			s.labels = append(s.labels, pair)
		}
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.value = v
	return s, nil
}

// splitLabels splits a label block on commas outside quoted values.
func splitLabels(block string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '"':
			if i == 0 || block[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, block[start:i])
				start = i + 1
			}
		}
	}
	if start < len(block) {
		out = append(out, block[start:])
	}
	return out
}

// familyOf strips the histogram-series suffixes so _bucket/_sum/_count
// samples map back to their TYPE comment's family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// checkExposition validates one exposition document line by line and
// returns the parsed samples.
func checkExposition(t *testing.T, body string) []promSample {
	t.Helper()
	typeSeen := map[string]string{}
	helpSeen := map[string]bool{}
	sampleFamilies := map[string]bool{}
	var samples []promSample

	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, " ") || strings.HasSuffix(line, "\t") {
			t.Fatalf("line %d has trailing whitespace: %q", ln+1, line)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			name, kind := fields[2], fields[3]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unknown TYPE %q", ln+1, kind)
			}
			if _, dup := typeSeen[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if sampleFamilies[name] {
				t.Fatalf("line %d: TYPE for %s appears after its samples", ln+1, name)
			}
			typeSeen[name] = kind
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 {
				t.Fatalf("line %d: malformed HELP comment %q", ln+1, line)
			}
			name := fields[2]
			if helpSeen[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form %q", ln+1, line)
		}
		s, err := parsePromLine(line)
		if err != nil {
			t.Fatalf("line %d: %v (%q)", ln+1, err, line)
		}
		fam := familyOf(s.name)
		if _, ok := typeSeen[fam]; !ok {
			// A bare-family sample may also be its own family (counter
			// without suffix whose name happens to end in _count is not
			// emitted by this repo).
			if _, ok := typeSeen[s.name]; !ok {
				t.Fatalf("line %d: sample %s before any TYPE comment", ln+1, s.name)
			}
			fam = s.name
		}
		sampleFamilies[fam] = true
		// Label keys sorted (le is spliced last by withLabel and is the
		// bucket axis, so exclude it from the sort check).
		var keys []string
		for _, pair := range s.labels {
			k, _, _ := strings.Cut(pair, "=")
			if k != "le" {
				keys = append(keys, k)
			}
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] > keys[i] {
				t.Fatalf("line %d: label keys not sorted: %v", ln+1, keys)
			}
		}
		samples = append(samples, s)
	}

	// Histogram families: buckets cumulative, +Inf bucket equals _count.
	type histKey struct{ fam, labels string }
	lastBucket := map[histKey]float64{}
	infBucket := map[histKey]float64{}
	counts := map[histKey]float64{}
	for _, s := range samples {
		fam := familyOf(s.name)
		if typeSeen[fam] != "histogram" {
			continue
		}
		var le string
		var rest []string
		for _, pair := range s.labels {
			if k, v, _ := strings.Cut(pair, "="); k == "le" {
				le = v
			} else {
				rest = append(rest, pair)
			}
		}
		key := histKey{fam, strings.Join(rest, ",")}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			if prev, ok := lastBucket[key]; ok && s.value < prev {
				t.Fatalf("histogram %s%s: bucket le=%s value %g below previous %g",
					fam, key.labels, le, s.value, prev)
			}
			lastBucket[key] = s.value
			if le == `"+Inf"` {
				infBucket[key] = s.value
			}
		case strings.HasSuffix(s.name, "_count"):
			counts[key] = s.value
		}
	}
	for key, c := range counts {
		if inf, ok := infBucket[key]; !ok || inf != c {
			t.Fatalf("histogram %s%s: +Inf bucket %g != count %g", key.fam, key.labels, infBucket[key], c)
		}
	}
	return samples
}

func TestMetricsExpositionValid(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rfabric_queries_total", Labels{"engine": "RM", "table": "t"}).Add(7)
	reg.Counter("rfabric_queries_total", Labels{"engine": "ROW", "table": "t"}).Add(3)
	reg.Counter("rfabric_errors_total", nil).Add(1)
	PublishBuildInfo(reg, "test", "ROW,RM")
	h := reg.Histogram("rfabric_cycles", Labels{"engine": "RM"})
	for _, v := range []float64{100, 5000, 1e6, 1e9} {
		h.Observe(v)
	}

	var last LastTrace
	srv := httptest.NewServer(NewMux(reg, &last))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	samples := checkExposition(t, string(body))

	// Spot-check the content survived the round trip.
	total := 0.0
	for _, s := range samples {
		if s.name == "rfabric_queries_total" {
			total += s.value
		}
	}
	if total != 10 {
		t.Fatalf("rfabric_queries_total sums to %g, want 10\n%s", total, body)
	}
}

func TestStatementsExpositionValid(t *testing.T) {
	store := NewStatStore()
	store.Record(StatSample{Fingerprint: 0xabc, Text: "SELECT 1", Engine: "RM",
		Cycles: 5000, WallNanos: 100, RowsRet: 1, RowsScan: 10, BytesDRAM: 640})
	store.Record(StatSample{Fingerprint: 0xabc, Text: "SELECT 1", Engine: "RM",
		Err: true})
	store.Record(StatSample{Fingerprint: 0xdef, Text: "SELECT 2", Engine: "ROW",
		Cycles: 9000, Slow: true, RowsRet: 2, RowsScan: 20, BytesDRAM: 1280,
		EstCycles: 4500, HasSel: true, EstSelectivity: 0.5, ActSelectivity: 0.4})

	mux := http.NewServeMux()
	store.Handle(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/statements.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	samples := checkExposition(t, string(body))

	byName := map[string]int{}
	for _, s := range samples {
		byName[s.name]++
		for _, pair := range s.labels {
			k, v, _ := strings.Cut(pair, "=")
			if k != "fingerprint" {
				t.Fatalf("unexpected label %s on %s", k, s.name)
			}
			if uq, _ := strconv.Unquote(v); len(uq) != 16 {
				t.Fatalf("fingerprint label %q not a 16-hex-digit string", v)
			}
		}
	}
	if byName["rfabric_stmt_calls_total"] != 2 {
		t.Fatalf("want 2 calls_total series, got %d\n%s", byName["rfabric_stmt_calls_total"], body)
	}
	if byName["rfabric_stmt_errors_total"] != 1 || byName["rfabric_stmt_slow_total"] != 1 {
		t.Fatalf("errors/slow series = %d/%d, want 1/1 (zero-valued series omitted)\n%s",
			byName["rfabric_stmt_errors_total"], byName["rfabric_stmt_slow_total"], body)
	}
}
