package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseRule(t *testing.T) {
	r, err := ParseRule("high_p99: p99_cycles > 5e6 for 10s over 30s severity page")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	want := Rule{Name: "high_p99", Metric: "p99_cycles", Threshold: 5e6,
		ForSeconds: 10, WindowSeconds: 30, Severity: "page"}
	if r != want {
		t.Fatalf("rule = %+v, want %+v", r, want)
	}
	if got := r.Expr(); got != "p99_cycles > 5e+06 for 10s over 30s severity page" {
		t.Fatalf("Expr = %q", got)
	}

	b, err := ParseRule("err_burn: burn error_rate slo 0.99 < 14 for 5s")
	if err != nil {
		t.Fatalf("ParseRule burn: %v", err)
	}
	if b.Metric != "error_rate" || b.Objective != 0.99 || !b.Less || b.Threshold != 14 || b.ForSeconds != 5 {
		t.Fatalf("burn rule = %+v", b)
	}
	// Expr output must round-trip through ParseRule.
	rt, err := ParseRule(b.Name + ": " + b.Expr())
	if err != nil || rt != b {
		t.Fatalf("Expr round-trip: %+v err=%v", rt, err)
	}

	for _, bad := range []string{
		"no colon here",
		"x: nonsense_metric > 1",
		"x: qps >= 1",              // unsupported operator
		"x: qps > abc",             // bad threshold
		"x: qps > 1 for ten",       // bad duration
		"x: qps > 1 banana",        // trailing junk
		"x: burn qps > 1",          // burn without slo
		"x: burn qps slo 1.5 > 1",  // objective out of range
		": qps > 1",                // empty name
		"x: qps",                   // missing operator
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Fatalf("ParseRule(%q) accepted, want error", bad)
		}
	}
}

// TestAlertStateMachine drives pending → firing → resolved with a shared
// fake clock: a latency regression pushes windowed p99 over threshold, the
// rule goes pending, fires after the hold, then resolves when the window
// drains.
func TestAlertStateMachine(t *testing.T) {
	clk := newFakeClock(10_000)
	w := NewWindowsAt(30, clk.Now)
	eng, err := NewAlertEngineAt(w, clk.Now, Rule{
		Name: "hot", Metric: "p99_cycles", Threshold: 1e6,
		ForSeconds: 3, WindowSeconds: 10, Severity: "page",
	})
	if err != nil {
		t.Fatalf("NewAlertEngineAt: %v", err)
	}

	state := func() string { return eng.Snapshot().Rules[0].State }

	// Healthy traffic: inactive.
	w.Record(WindowSample{Cycles: 10_000})
	eng.Evaluate()
	if got := state(); got != "inactive" {
		t.Fatalf("healthy: state = %s", got)
	}
	if eng.FiringPage() {
		t.Fatal("healthy: FiringPage true")
	}

	// Latency regression: breach → pending, not yet firing.
	w.Record(WindowSample{Cycles: 500_000_000})
	eng.Evaluate()
	if got := state(); got != "pending" {
		t.Fatalf("first breach: state = %s, want pending", got)
	}

	// Sustained past ForSeconds: firing.
	clk.AdvanceSec(3)
	w.Record(WindowSample{Cycles: 500_000_000})
	eng.Evaluate()
	if got := state(); got != "firing" {
		t.Fatalf("sustained breach: state = %s, want firing", got)
	}
	if !eng.FiringPage() {
		t.Fatal("firing page rule: FiringPage false")
	}
	snap := eng.Snapshot()
	if snap.Firing != 1 || snap.Rules[0].FiredTotal != 1 {
		t.Fatalf("firing snapshot = %+v", snap.Rules[0])
	}

	// The regression ages out of the 10s window: resolved.
	clk.AdvanceSec(15)
	w.Record(WindowSample{Cycles: 10_000})
	eng.Evaluate()
	if got := state(); got != "inactive" {
		t.Fatalf("after recovery: state = %s, want inactive", got)
	}
	if eng.FiringPage() {
		t.Fatal("recovered: FiringPage still true")
	}

	// History recorded inactive→pending→firing→inactive, with the final
	// transition marked as a resolve.
	hist := eng.Snapshot().History
	if len(hist) != 3 {
		t.Fatalf("history has %d transitions: %+v", len(hist), hist)
	}
	wantTo := []string{"pending", "firing", "inactive"}
	for i, tr := range hist {
		if tr.To != wantTo[i] || tr.Rule != "hot" {
			t.Fatalf("history[%d] = %+v, want to=%s", i, tr, wantTo[i])
		}
	}
	if !hist[2].Resolve {
		t.Fatal("final transition not marked resolved")
	}
}

// TestAlertForZeroFiresImmediately: ForSeconds == 0 skips pending dwell —
// the first breaching evaluation fires.
func TestAlertForZeroFiresImmediately(t *testing.T) {
	clk := newFakeClock(50)
	w := NewWindowsAt(10, clk.Now)
	eng, err := NewAlertEngineAt(w, clk.Now,
		Rule{Name: "instant", Metric: "qps", Threshold: 0.01, WindowSeconds: 5})
	if err != nil {
		t.Fatal(err)
	}
	w.Record(WindowSample{Cycles: 1})
	eng.Evaluate()
	if got := eng.Snapshot().Rules[0].State; got != "firing" {
		t.Fatalf("for=0 first breach: state = %s, want firing", got)
	}
}

// TestAlertBurnRate: the compared value is metric / (1 - objective) — a 5%
// error rate against a 99% SLO burns 5x the budget.
func TestAlertBurnRate(t *testing.T) {
	clk := newFakeClock(300)
	w := NewWindowsAt(20, clk.Now)
	eng, err := NewAlertEngineAt(w, clk.Now, Rule{
		Name: "burn", Metric: "error_rate", Objective: 0.99,
		Threshold: 4, WindowSeconds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 19 ok + 1 error = 5% error rate → burn 5.0 > 4: fires.
	for i := 0; i < 19; i++ {
		w.Record(WindowSample{Cycles: 100})
	}
	w.Record(WindowSample{Err: true})
	eng.Evaluate()
	st := eng.Snapshot().Rules[0]
	if st.State != "firing" {
		t.Fatalf("burn 5x: state = %s, want firing", st.State)
	}
	if st.Value < 4.99 || st.Value > 5.01 {
		t.Fatalf("burn value = %g, want ~5", st.Value)
	}
}

func TestAlertLessComparison(t *testing.T) {
	clk := newFakeClock(400)
	w := NewWindowsAt(10, clk.Now)
	eng, err := NewAlertEngineAt(w, clk.Now,
		Rule{Name: "starved", Metric: "qps", Less: true, Threshold: 0.5, WindowSeconds: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng.Evaluate() // zero traffic < 0.5
	if got := eng.Snapshot().Rules[0].State; got != "firing" {
		t.Fatalf("less-than rule on idle window: state = %s, want firing", got)
	}
	for i := 0; i < 10; i++ {
		w.Record(WindowSample{Cycles: 1})
	}
	eng.Evaluate()
	if got := eng.Snapshot().Rules[0].State; got != "inactive" {
		t.Fatalf("traffic restored: state = %s, want inactive", got)
	}
}

func TestAlertEngineStartStop(t *testing.T) {
	w := NewWindows(10)
	eng, err := NewAlertEngine(w, Rule{Name: "idle", Metric: "qps", Less: true, Threshold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start(time.Millisecond)
	eng.Start(time.Millisecond) // second Start is a no-op, not a second ticker
	deadline := time.Now().Add(2 * time.Second)
	for eng.Snapshot().Rules[0].State != "firing" {
		if time.Now().After(deadline) {
			t.Fatal("ticker never evaluated")
		}
		time.Sleep(time.Millisecond)
	}
	eng.Stop()
	eng.Stop() // idempotent
}

func TestAlertsHandle(t *testing.T) {
	clk := newFakeClock(600)
	w := NewWindowsAt(10, clk.Now)
	eng, err := NewAlertEngineAt(w, clk.Now,
		Rule{Name: "r1", Metric: "qps", Threshold: 100, Severity: "warn"})
	if err != nil {
		t.Fatal(err)
	}
	eng.Evaluate()
	mux := http.NewServeMux()
	eng.Handle(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var doc AlertsJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/alerts not JSON: %v\n%s", err, body)
	}
	if doc.NowUnix != 600 || len(doc.Rules) != 1 || doc.Rules[0].Name != "r1" || doc.Firing != 0 {
		t.Fatalf("alerts doc = %+v", doc)
	}
	if doc.History == nil {
		t.Fatal("history must marshal as [], not null")
	}
}

func TestHealthEndpoints(t *testing.T) {
	clk := newFakeClock(700)
	w := NewWindowsAt(10, clk.Now)
	eng, err := NewAlertEngineAt(w, clk.Now,
		Rule{Name: "starve", Metric: "qps", Less: true, Threshold: 0.5, Severity: "page", WindowSeconds: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHealth("v-test", "ROW,COL", eng)
	mux := http.NewServeMux()
	h.Handle(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, map[string]any) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("GET %s: body not JSON: %v", path, err)
		}
		return resp.StatusCode, m
	}

	// Liveness is unconditional; readiness starts false.
	if code, body := get("/healthz"); code != 200 || body["version"] != "v-test" {
		t.Fatalf("/healthz = %d %v", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady = %d, want 503", code)
	}

	h.SetReady(true)
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz after SetReady = %d, want 200", code)
	}

	// A firing page-severity alert flips readiness off.
	eng.Evaluate() // idle window breaches the less-than qps rule
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["page_firing"] != true {
		t.Fatalf("/readyz with page firing = %d %v, want 503", code, body)
	}

	// Alerts-free health still works (nil engine).
	h2 := NewHealth("v2", "ROW", nil)
	h2.SetReady(true)
	if !h2.Ready() {
		t.Fatal("nil-alerts health not ready")
	}
}

func TestPublishBuildInfo(t *testing.T) {
	reg := NewRegistry()
	PublishBuildInfo(reg, "1.2.3", "ROW,COL")
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{"rfabric_build_info", `version="1.2.3"`, `engines="ROW,COL"`, `go="go`} {
		if !strings.Contains(out, want) {
			t.Fatalf("build info exposition missing %q:\n%s", want, out)
		}
	}
	PublishBuildInfo(nil, "x", "y") // nil registry must not panic
}
