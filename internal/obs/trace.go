package obs

import (
	"fmt"
	"io"
	"sync"
)

// Attr is one key-value annotation on a span. Attrs are kept as an ordered
// slice (not a map) so rendering and JSON output are deterministic.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one node of a query's trace tree. Cycles carries the modeled
// cycles attributed directly to this span; attribution leaves are laid out
// so that a root's AttributedCycles reconciles exactly with the run's
// Breakdown.TotalCycles. Detail subtrees (per-morsel, per-shard executions
// that overlap in modeled time) are excluded from that sum — their own
// roots reconcile against their own partial breakdowns instead.
type Span struct {
	Name string `json:"name"`
	// Cycles is the modeled-cycle attribution of this span itself
	// (exclusive of children).
	Cycles uint64 `json:"cycles,omitempty"`
	// Bytes is the byte attribution of this span itself.
	Bytes uint64 `json:"bytes,omitempty"`
	// Detail marks an informational subtree whose cycles overlap the
	// attributed time (parallel morsels/shards) rather than adding to it.
	Detail   bool    `json:"detail,omitempty"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`
}

// AddChild appends and returns a named child span. Nil-safe.
func (s *Span) AddChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name}
	s.Children = append(s.Children, c)
	return c
}

// Leaf appends an attribution leaf carrying cycles and bytes. Nil-safe.
func (s *Span) Leaf(name string, cycles, bytes uint64) *Span {
	c := s.AddChild(name)
	if c != nil {
		c.Cycles = cycles
		c.Bytes = bytes
	}
	return c
}

// Adopt attaches an independently built subtree (a per-morsel or per-shard
// trace) under s. Nil-safe in both directions.
func (s *Span) Adopt(child *Span) {
	if s == nil || child == nil {
		return
	}
	s.Children = append(s.Children, child)
}

// SetAttr records (or overwrites) an annotation. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Attr returns the value of an annotation.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// AttributedCycles sums this span's own cycles plus all non-detail
// descendants' — the quantity that reconciles with Breakdown.TotalCycles.
func (s *Span) AttributedCycles() uint64 {
	if s == nil {
		return 0
	}
	total := s.Cycles
	for _, c := range s.Children {
		if c.Detail {
			continue
		}
		total += c.AttributedCycles()
	}
	return total
}

// AttributedBytes sums this span's own bytes plus all non-detail
// descendants'.
func (s *Span) AttributedBytes() uint64 {
	if s == nil {
		return 0
	}
	total := s.Bytes
	for _, c := range s.Children {
		if c.Detail {
			continue
		}
		total += c.AttributedBytes()
	}
	return total
}

// Find returns the first span named name in a pre-order walk.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Tracer builds one query's span tree through Begin/End events. It is
// single-goroutine state, like the simulated System it observes; parallel
// executors give each worker its own Tracer and Adopt the sub-roots in
// deterministic order afterwards. A nil *Tracer no-ops every method — the
// zero-overhead opt-out.
type Tracer struct {
	root *Span
	// stack holds the open spans; Begin pushes, End pops.
	stack []*Span
	// tl is the optional cycle-sampled Timeline riding along with this
	// trace; engines reach it through Timeline() so the sampler flows to
	// every layer the tracer already reaches without new plumbing.
	tl *Timeline
}

// NewTracer starts a trace rooted at a span named name.
func NewTracer(name string) *Tracer {
	root := &Span{Name: name}
	return &Tracer{root: root, stack: []*Span{root}}
}

// Begin opens a child span under the innermost open span and returns it.
// Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Begin(name string) *Span {
	if t == nil {
		return nil
	}
	s := t.stack[len(t.stack)-1].AddChild(name)
	t.stack = append(t.stack, s)
	return s
}

// End closes the innermost open span. The root never pops.
func (t *Tracer) End() {
	if t == nil || len(t.stack) <= 1 {
		return
	}
	t.stack = t.stack[:len(t.stack)-1]
}

// Current returns the innermost open span (the root before any Begin).
func (t *Tracer) Current() *Span {
	if t == nil {
		return nil
	}
	return t.stack[len(t.stack)-1]
}

// Root returns the trace's root span.
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// AttachTimeline hangs a cycle-sampled Timeline on the tracer. Nil-safe.
func (t *Tracer) AttachTimeline(tl *Timeline) {
	if t == nil {
		return
	}
	t.tl = tl
}

// Timeline returns the attached Timeline (nil when sampling is off —
// every Timeline hook is nil-safe, so callers use the result directly).
func (t *Tracer) Timeline() *Timeline {
	if t == nil {
		return nil
	}
	return t.tl
}

// Trace is one finished query trace: the EXPLAIN ANALYZE artifact.
type Trace struct {
	Query  string `json:"query,omitempty"`
	Engine string `json:"engine,omitempty"`
	// TotalCycles is the run's Breakdown.TotalCycles, the number the root
	// span's AttributedCycles reconciles against.
	TotalCycles uint64 `json:"total_cycles"`
	// WallNanos and AllocBytes are the run's real wall-clock duration and
	// heap-allocation delta — the host-side cost riding alongside the
	// modeled cycles (zero on traces captured before these were recorded).
	WallNanos  int64  `json:"wall_ns,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	Root       *Span  `json:"root"`
	// Timeline is the optional cycle-sampled hardware time series recorded
	// alongside the span tree (WithTimeline trace option).
	Timeline *Timeline `json:"timeline,omitempty"`
}

// Render writes the span tree as an EXPLAIN ANALYZE style text block:
// per-node cycles and bytes, then attributes.
func (t *Trace) Render(w io.Writer) {
	if t == nil || t.Root == nil {
		fmt.Fprintln(w, "(no trace)")
		return
	}
	fmt.Fprintf(w, "TRACE %s engine=%s total_cycles=%d attributed=%d\n",
		t.Query, t.Engine, t.TotalCycles, t.Root.AttributedCycles())
	renderSpan(w, t.Root, 0)
}

func renderSpan(w io.Writer, s *Span, depth int) {
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	fmt.Fprintf(w, "- %s", s.Name)
	if s.Cycles > 0 {
		fmt.Fprintf(w, " cycles=%d", s.Cycles)
	}
	if s.Bytes > 0 {
		fmt.Fprintf(w, " bytes=%d", s.Bytes)
	}
	if s.Detail {
		io.WriteString(w, " [detail]")
	}
	for _, a := range s.Attrs {
		fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
	}
	io.WriteString(w, "\n")
	for _, c := range s.Children {
		renderSpan(w, c, depth+1)
	}
}

// LastTrace is a concurrency-safe slot for the most recent trace, the
// backing store of the /debug/trace/last endpoint.
type LastTrace struct {
	mu sync.Mutex
	t  *Trace
}

// Store replaces the held trace.
func (l *LastTrace) Store(t *Trace) {
	if l == nil || t == nil {
		return
	}
	l.mu.Lock()
	l.t = t
	l.mu.Unlock()
}

// Load returns the held trace (nil if none yet).
func (l *LastTrace) Load() *Trace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t
}
