package obs

import "testing"

// The observability layer's contract is that opting out costs (almost)
// nothing: a disabled registry reduces every publish to one atomic load, and
// nil *Tracer / *Timeline hooks no-op. These tests pin the allocation half
// of that contract; the benchmarks below put a number on the cycle half.

func TestDisabledRegistryPublishesDoNotAllocate(t *testing.T) {
	reg := NewRegistry()
	labels := Labels{"engine": "RM"}
	c := reg.Counter("rfabric_test_total", labels)
	g := reg.Gauge("rfabric_test_gauge", labels)
	h := reg.Histogram("rfabric_test_cycles", labels)
	reg.SetDisabled(true)

	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(42)
		h.Observe(1234)
	}); n != 0 {
		t.Errorf("disabled publishes allocate %.1f times per run, want 0", n)
	}
	if c.Value() != 0 || h.Count() != 0 {
		t.Errorf("disabled publishes still recorded: counter=%d histogram=%d", c.Value(), h.Count())
	}

	reg.SetDisabled(false)
	c.Add(1)
	h.Observe(1234)
	if c.Value() != 1 || h.Count() != 1 {
		t.Errorf("re-enabled publishes lost: counter=%d histogram=%d", c.Value(), h.Count())
	}
}

func TestNilHooksDoNotAllocate(t *testing.T) {
	var tr *Tracer
	var tl *Timeline
	if n := testing.AllocsPerRun(100, func() {
		tr.Begin("span")
		tr.End()
		tr.Root()
		tr.Timeline()
		tl.DRAMAccess(3, 40, true)
		tl.CacheLoad(false)
		tl.FabricChunk(100, 20)
		tl.Tick(500)
		tl.Finish(1000)
	}); n != 0 {
		t.Errorf("nil tracer/timeline hooks allocate %.1f times per run, want 0", n)
	}
}

// TestDisabledStatStoreIsFree pins the statement-statistics off-switch: a
// disabled (or nil) StatStore must cost the query path one atomic load and
// zero allocations. The DB gates fingerprinting itself on Disabled(), so
// this is the whole per-query overhead when statistics are off.
func TestDisabledStatStoreIsFree(t *testing.T) {
	s := NewStatStore()
	s.SetDisabled(true)
	var nilStore *StatStore
	if n := testing.AllocsPerRun(100, func() {
		if !s.Disabled() {
			t.Fatal("fingerprinting gate open on disabled store")
		}
		if !nilStore.Disabled() {
			t.Fatal("fingerprinting gate open on nil store")
		}
		// Even a caller that skipped the gate must not allocate.
		s.Record(StatSample{Fingerprint: 1, Cycles: 100})
		nilStore.Record(StatSample{Fingerprint: 1, Cycles: 100})
	}); n != 0 {
		t.Errorf("disabled StatStore path allocates %.1f times per run, want 0", n)
	}
	if s.Len() != 0 {
		t.Errorf("disabled store recorded %d statements, want 0", s.Len())
	}

	s.SetDisabled(false)
	s.Record(StatSample{Fingerprint: 1, Text: "SELECT ?", Cycles: 100})
	if s.Len() != 1 {
		t.Errorf("re-enabled store lost the record: len=%d", s.Len())
	}
}

// TestDisabledWindowsIsFree pins the sliding-window off-switch: a nil or
// disabled Windows must cost the query path one atomic load and zero
// allocations — and an *enabled* Record must not allocate either, since it
// folds into fixed-size buckets.
func TestDisabledWindowsIsFree(t *testing.T) {
	w := NewWindows(10)
	w.SetDisabled(true)
	var nilW *Windows
	sample := WindowSample{Cycles: 1234, BytesDRAM: 64, CacheLoads: 10, CacheMisses: 1}
	if n := testing.AllocsPerRun(100, func() {
		if w.Enabled() || nilW.Enabled() {
			t.Fatal("capture gate open on disabled/nil Windows")
		}
		// Even a caller that skipped the gate must not allocate.
		w.Record(sample)
		nilW.Record(sample)
	}); n != 0 {
		t.Errorf("disabled Windows path allocates %.1f times per run, want 0", n)
	}
	if got := w.Snapshot(0).Queries; got != 0 {
		t.Errorf("disabled Windows recorded %d queries, want 0", got)
	}

	w.SetDisabled(false)
	if n := testing.AllocsPerRun(100, func() {
		w.Record(sample)
	}); n != 0 {
		t.Errorf("enabled Record allocates %.1f times per run, want 0", n)
	}
	if got := w.Snapshot(0).Queries; got == 0 {
		t.Error("re-enabled Windows lost its records")
	}
}

// TestHeapAllocBytesDoesNotAllocate pins the sampling primitive itself: the
// pooled runtime/metrics read must not allocate on the steady path, or the
// act of measuring per-query allocations would pollute the measurement.
func TestHeapAllocBytesDoesNotAllocate(t *testing.T) {
	HeapAllocBytes() // warm the pool
	if n := testing.AllocsPerRun(100, func() { HeapAllocBytes() }); n != 0 {
		t.Errorf("HeapAllocBytes allocates %.1f times per run, want 0", n)
	}
}

// BenchmarkDisabledWindowsRecord measures the per-query cost with windows
// attached but disabled: one atomic load.
func BenchmarkDisabledWindowsRecord(b *testing.B) {
	w := NewWindows(10)
	w.SetDisabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Record(WindowSample{Cycles: 1})
	}
}

// BenchmarkWindowsRecord measures the enabled per-query fold: stripe lock +
// bucket update, no allocation.
func BenchmarkWindowsRecord(b *testing.B) {
	w := NewWindows(60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Record(WindowSample{Cycles: uint64(i), BytesDRAM: 64})
	}
}

// BenchmarkDisabledCounterAdd measures the hot-path cost the engines pay
// per publish when a registry is attached but disabled: one atomic load.
func BenchmarkDisabledCounterAdd(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("rfabric_bench_total", nil)
	reg.SetDisabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkNilTimelineHook measures the per-access cost the DRAM model pays
// when no timeline is attached: one nil check.
func BenchmarkNilTimelineHook(b *testing.B) {
	var tl *Timeline
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tl.DRAMAccess(i&7, 40, i&1 == 0)
	}
}
