package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"
)

// Health is the liveness/readiness surface of a serving process:
//
//	GET /healthz — liveness: 200 as long as the process responds, with
//	               version and uptime in the body.
//	GET /readyz  — readiness: 200 once SetReady(true) and no page-severity
//	               alert is firing; 503 otherwise. Load balancers and CI
//	               smoke checks key off the status code.
type Health struct {
	version    string
	engines    string
	startNanos int64
	ready      atomic.Bool
	alerts     *AlertEngine // optional; nil means readiness ignores alerts
	now        func() int64
}

// NewHealth builds the health surface. alerts may be nil.
func NewHealth(version, engines string, alerts *AlertEngine) *Health {
	now := func() int64 { return time.Now().UnixNano() }
	return &Health{version: version, engines: engines, startNanos: now(), alerts: alerts, now: now}
}

// SetReady flips readiness (off until called with true).
func (h *Health) SetReady(r bool) { h.ready.Store(r) }

// Ready reports the readiness verdict /readyz serves.
func (h *Health) Ready() bool { return h.ready.Load() && !h.alerts.FiringPage() }

// healthBody is the JSON both endpoints serve.
type healthBody struct {
	Status        string `json:"status"`
	Version       string `json:"version,omitempty"`
	Engines       string `json:"engines,omitempty"`
	Go            string `json:"go"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	FiringAlerts  int    `json:"firing_alerts"`
	PageFiring    bool   `json:"page_firing,omitempty"`
}

func (h *Health) body(status string) healthBody {
	b := healthBody{
		Status:        status,
		Version:       h.version,
		Engines:       h.engines,
		Go:            runtime.Version(),
		UptimeSeconds: (h.now() - h.startNanos) / 1e9,
	}
	if h.alerts != nil {
		snap := h.alerts.Snapshot()
		b.FiringAlerts = snap.Firing
		b.PageFiring = h.alerts.FiringPage()
	}
	return b
}

// Handle mounts /healthz and /readyz.
func (h *Health) Handle(mux *http.ServeMux) {
	writeBody := func(w http.ResponseWriter, code int, b healthBody) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(b)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		writeBody(w, http.StatusOK, h.body("ok"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		if h.Ready() {
			writeBody(w, http.StatusOK, h.body("ready"))
			return
		}
		writeBody(w, http.StatusServiceUnavailable, h.body("unavailable"))
	})
}

// PublishBuildInfo sets the rfabric_build_info gauge to 1 with identity
// labels (version, engine set, Go toolchain), the conventional *_build_info
// pattern that lets every scrape identify the binary it came from.
func PublishBuildInfo(reg *Registry, version, engines string) {
	if reg == nil {
		return
	}
	reg.Gauge("rfabric_build_info", Labels{
		"version": version,
		"engines": engines,
		"go":      runtime.Version(),
	}).Set(1)
}
