package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndLabels(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("rfabric_test_total", Labels{"engine": "RM", "table": "t"})
	b := reg.Counter("rfabric_test_total", Labels{"table": "t", "engine": "RM"})
	if a != b {
		t.Fatal("label order changed series identity")
	}
	c := reg.Counter("rfabric_test_total", Labels{"engine": "ROW", "table": "t"})
	if a == c {
		t.Fatal("different labels collapsed into one series")
	}
	a.Add(3)
	a.Add(4)
	c.Add(1)
	if a.Value() != 7 || c.Value() != 1 {
		t.Fatalf("counter values: %d, %d", a.Value(), c.Value())
	}
}

func TestDisabledRegistry(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("rfabric_off_total", nil)
	h := reg.Histogram("rfabric_off_hist", nil)
	g := reg.Gauge("rfabric_off_gauge", nil)
	reg.SetDisabled(true)
	c.Add(5)
	h.Observe(100)
	g.Set(3.5)
	if c.Value() != 0 || h.Count() != 0 || g.Value() != 0 {
		t.Fatal("disabled registry still recorded")
	}
	reg.SetDisabled(false)
	c.Add(5)
	if c.Value() != 5 {
		t.Fatal("re-enabled registry did not record")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Begin("x")
	s.SetAttr("k", "v")
	s.Leaf("leaf", 1, 2)
	s.Adopt(&Span{})
	tr.End()
	if tr.Root() != nil || tr.Current() != nil || s.AttributedCycles() != 0 {
		t.Fatal("nil tracer/span did not no-op")
	}
	var c *Counter
	c.Add(1) // must not panic
	var h *Histogram
	h.Observe(1)
	var g *Gauge
	g.Set(1)
	var lt *LastTrace
	lt.Store(&Trace{})
	if lt.Load() != nil {
		t.Fatal("nil LastTrace returned a trace")
	}
}

func TestConcurrentPublish(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				reg.Counter("rfabric_conc_total", Labels{"w": "x"}).Add(1)
				reg.Histogram("rfabric_conc_hist", nil).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("rfabric_conc_total", Labels{"w": "x"}).Value(); got != 8000 {
		t.Fatalf("concurrent adds lost updates: %d", got)
	}
	if got := reg.Histogram("rfabric_conc_hist", nil).Count(); got != 8000 {
		t.Fatalf("concurrent observes lost updates: %d", got)
	}
}

func TestPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rfabric_dram_bytes_read_total", Labels{"component": "dram"}).Add(4096)
	reg.Gauge("rfabric_cache_miss_ratio", Labels{"engine": "RM"}).Set(0.25)
	reg.Histogram("rfabric_query_cycles", Labels{"engine": "RM"}).Observe(1000)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rfabric_dram_bytes_read_total counter",
		`rfabric_dram_bytes_read_total{component="dram"} 4096`,
		`rfabric_cache_miss_ratio{engine="RM"} 0.25`,
		`rfabric_query_cycles_bucket{engine="RM",le="1024"} 1`,
		`rfabric_query_cycles_bucket{engine="RM",le="+Inf"} 1`,
		`rfabric_query_cycles_sum{engine="RM"} 1000`,
		`rfabric_query_cycles_count{engine="RM"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

func TestJSONExportParses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rfabric_x_total", Labels{"a": "b"}).Add(1)
	reg.Histogram("rfabric_x_hist", nil).Observe(10)
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out ExportJSON
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("JSON export does not parse: %v", err)
	}
	if len(out.Counters) != 1 || len(out.Histograms) != 1 {
		t.Fatalf("unexpected export shape: %+v", out)
	}
}

func TestSpanAttribution(t *testing.T) {
	tr := NewTracer("query")
	exec := tr.Begin("execute")
	exec.Leaf("compute", 100, 0)
	exec.Leaf("memory", 50, 4096)
	detail := exec.AddChild("morsels")
	detail.Detail = true
	detail.Leaf("morsel[0]", 999, 999) // overlapped time: excluded
	tr.End()
	if got := tr.Root().AttributedCycles(); got != 150 {
		t.Fatalf("attributed cycles = %d, want 150", got)
	}
	if got := tr.Root().AttributedBytes(); got != 4096 {
		t.Fatalf("attributed bytes = %d, want 4096", got)
	}
	if tr.Root().Find("morsel[0]") == nil {
		t.Fatal("Find missed a detail leaf")
	}
	if tr.Current() != tr.Root() {
		t.Fatal("End did not pop back to root")
	}
}

func TestTraceRenderAndJSON(t *testing.T) {
	tr := NewTracer("query")
	sp := tr.Begin("rm.execute")
	sp.SetAttr("table", "lineitem")
	sp.Leaf("pipeline", 1234, 512)
	tr.End()
	trace := &Trace{Query: "SELECT ...", Engine: "RM", TotalCycles: 1234, Root: tr.Root()}
	var b strings.Builder
	trace.Render(&b)
	out := b.String()
	for _, want := range []string{"rm.execute", "table=lineitem", "pipeline", "cycles=1234"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	raw, err := json.Marshal(trace)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Root.AttributedCycles() != 1234 {
		t.Fatal("trace did not round-trip through JSON")
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rfabric_served_total", nil).Add(9)
	last := &LastTrace{}
	mux := NewMux(reg, last)

	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "rfabric_served_total 9") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/trace/last"); code != 404 {
		t.Fatalf("/debug/trace/last before any trace: code=%d, want 404", code)
	}
	last.Store(&Trace{Engine: "RM", TotalCycles: 7, Root: &Span{Name: "query"}})
	code, body := get("/debug/trace/last")
	if code != 200 {
		t.Fatalf("/debug/trace/last: code=%d", code)
	}
	var tr Trace
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("trace endpoint not JSON: %v", err)
	}
	if tr.TotalCycles != 7 {
		t.Fatalf("trace endpoint returned %+v", tr)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, "rfabric_served_total") {
		t.Fatalf("/metrics.json: code=%d body=%q", code, body)
	}
}
