package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metric series. Handles returned by Counter, Gauge,
// and Histogram are stable for the registry's lifetime, so hot paths fetch
// them once and publish through atomics; the registry lock is only taken on
// first registration and on export. A disabled registry makes every publish
// a no-op (one atomic load), the opt-out the deterministic experiment
// harnesses rely on.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	disabled atomic.Bool
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// SetDisabled toggles publishing. Export still renders whatever was
// recorded while enabled.
func (r *Registry) SetDisabled(d bool) { r.disabled.Store(d) }

// Disabled reports whether publishing is off.
func (r *Registry) Disabled() bool { return r.disabled.Load() }

// Counter returns (registering on first use) the counter series name+labels.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	key := name + labels.canonical()
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[key]; ok {
		return c
	}
	c = &Counter{name: name, labels: labels.canonical(), disabled: &r.disabled}
	r.counters[key] = c
	return c
}

// Gauge returns (registering on first use) the gauge series name+labels.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	key := name + labels.canonical()
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[key]; ok {
		return g
	}
	g = &Gauge{name: name, labels: labels.canonical(), disabled: &r.disabled}
	r.gauges[key] = g
	return g
}

// Histogram returns (registering on first use) the histogram series
// name+labels, bucketed by DefaultBuckets.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	key := name + labels.canonical()
	r.mu.RLock()
	h, ok := r.hists[key]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[key]; ok {
		return h
	}
	h = &Histogram{
		name:     name,
		labels:   labels.canonical(),
		bounds:   DefaultBuckets(),
		buckets:  make([]uint64, len(DefaultBuckets())+1),
		disabled: &r.disabled,
	}
	r.hists[key] = h
	return h
}

// snapshot returns sorted copies of every series for the exporters.
func (r *Registry) snapshot() (cs []*Counter, gs []*Gauge, hs []*Histogram) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		cs = append(cs, c)
	}
	for _, g := range r.gauges {
		gs = append(gs, g)
	}
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].name+cs[i].labels < cs[j].name+cs[j].labels })
	sort.Slice(gs, func(i, j int) bool { return gs[i].name+gs[i].labels < gs[j].name+gs[j].labels })
	sort.Slice(hs, func(i, j int) bool { return hs[i].name+hs[i].labels < hs[j].name+hs[j].labels })
	return cs, gs, hs
}

// Counter is a monotonically increasing series.
type Counter struct {
	name     string
	labels   string
	v        atomic.Uint64
	disabled *atomic.Bool
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil || c.disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time value series.
type Gauge struct {
	name     string
	labels   string
	bits     atomic.Uint64
	disabled *atomic.Bool
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil || g.disabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultBuckets returns the exponential bucket bounds shared by every
// histogram: powers of four from 256 up to ~6.9e10, a range that covers
// modeled cycle counts from a single cache hit to a paper-scale TPC-H scan.
func DefaultBuckets() []float64 {
	out := make([]float64, 0, 14)
	for b := 256.0; b < 1e11; b *= 4 {
		out = append(out, b)
	}
	return out
}

// Histogram is a fixed-bucket distribution series (cumulative buckets in
// the Prometheus sense are computed at export time).
type Histogram struct {
	name     string
	labels   string
	disabled *atomic.Bool

	mu      sync.Mutex
	bounds  []float64
	buckets []uint64 // len(bounds)+1; last is the +Inf overflow
	count   uint64
	sum     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.disabled.Load() {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketIndex(h.bounds, v)]++
	h.count++
	h.sum += v
}

// bucketIndex returns the bucket a sample lands in: the first bound >= v,
// or the overflow slot past the last bound. Shared by Histogram and the
// sliding-window buckets so both count on the same grid.
func bucketIndex(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}

// Count returns how many samples were observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the bucket holding the target rank, the same
// estimate Prometheus's histogram_quantile computes. Samples landing in
// the +Inf overflow bucket clamp to the last finite bound. Returns 0 when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return bucketQuantile(h.bounds, h.buckets, h.count, q)
}

// bucketQuantile is the quantile estimate over one bucket layout — the
// single implementation Histogram.Quantile and the sliding-window merges
// share, so a windowed p99 agrees exactly with a Histogram fed the same
// samples.
func bucketQuantile(bounds []float64, buckets []uint64, count uint64, q float64) float64 {
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	var cum float64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next < rank {
			cum = next
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		return lo + (hi-lo)*((rank-cum)/float64(n))
	}
	return bounds[len(bounds)-1]
}
