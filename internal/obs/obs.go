// Package obs is the unified observability layer of the reproduction: a
// lock-cheap metrics registry the simulated components (DRAM, caches,
// fabric, engines, shards) publish into, per-query trace spans that carry
// modeled-cycle and byte attributions, and machine-readable exporters
// (Prometheus text and JSON) plus an HTTP surface for live inspection.
//
// The paper's entire argument rests on where cycles and bytes go (§V:
// demand vs. pipeline paths, DRAM occupancy floors, fabric gather traffic).
// This package turns those numbers — previously locked inside per-component
// Stats structs and a terminal Breakdown — into named series and span trees
// that reconcile exactly with the cost model, the same observability-first
// posture ReProVide's runtime-statistics feedback and Farview's
// per-operator byte accounting take.
//
// Everything here is optional and cheap to leave off: a nil *Tracer no-ops
// every method, and a disabled Registry turns every publish into a single
// atomic load. The simulated hot paths are untouched unless a caller asks
// for a traced run.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Labels is one metric series' key-value identity (engine kind, table,
// component). Series with the same name and different labels are distinct.
type Labels map[string]string

// canonical renders labels in the stable `{k="v",...}` form used both as
// the registry key and in the Prometheus exposition.
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}
