package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLO/alert engine over the sliding windows: declarative rules evaluated on
// a ticker, each running the classic pending → firing → resolved state
// machine with a transition history. Two rule shapes:
//
//   - threshold: a windowed metric compared against a constant, sustained
//     for a hold duration before it fires —
//     "p99 over 30s stays above 5M cycles for 10s".
//   - burn rate: a rate metric divided by its SLO's remaining budget —
//     "error_rate over 60s burns the 99% objective 14x for 5s", the
//     multiwindow-burn-rate alerting shape SRE playbooks use.
//
// Rules come from ParseRule's one-line text syntax (the -alert flag,
// config files) or are built directly as Rule literals.

// AlertState is one rule's position in the state machine.
type AlertState int

const (
	// AlertInactive: condition false, nothing brewing.
	AlertInactive AlertState = iota
	// AlertPending: condition true but not yet sustained for the rule's
	// hold duration.
	AlertPending
	// AlertFiring: condition sustained; the alert is active.
	AlertFiring
)

// String renders the state for JSON and dashboards.
func (s AlertState) String() string {
	switch s {
	case AlertPending:
		return "pending"
	case AlertFiring:
		return "firing"
	default:
		return "inactive"
	}
}

// windowMetrics names every windowed metric a rule may reference.
var windowMetrics = map[string]func(*WindowSnapshot) float64{
	"qps":                func(s *WindowSnapshot) float64 { return s.QPS },
	"error_rate":         func(s *WindowSnapshot) float64 { return s.ErrorRate },
	"slow_rate":          func(s *WindowSnapshot) float64 { return s.SlowRate },
	"p50_cycles":         func(s *WindowSnapshot) float64 { return s.P50Cycles },
	"p95_cycles":         func(s *WindowSnapshot) float64 { return s.P95Cycles },
	"p99_cycles":         func(s *WindowSnapshot) float64 { return s.P99Cycles },
	"mean_cycles":        func(s *WindowSnapshot) float64 { return s.MeanCycles },
	"cycles_per_sec":     func(s *WindowSnapshot) float64 { return s.CyclesPerSec },
	"dram_bytes_per_sec": func(s *WindowSnapshot) float64 { return s.DRAMBytesPerSec },
	"cpu_bytes_per_sec":  func(s *WindowSnapshot) float64 { return s.CPUBytesPerSec },
	"cache_miss_ratio":   func(s *WindowSnapshot) float64 { return s.CacheMissRatio },
	"mean_wall_ns":       func(s *WindowSnapshot) float64 { return s.MeanWallNanos },
	"mean_alloc_bytes":   func(s *WindowSnapshot) float64 { return s.MeanAllocBytes },
}

// Rule is one declarative alert condition.
type Rule struct {
	// Name identifies the rule in /debug/alerts and the history.
	Name string
	// Metric is one of the windowed metric names (see ParseRule).
	Metric string
	// Objective, when in (0,1), turns the rule into a burn-rate rule: the
	// compared value is Metric / (1 - Objective), the multiple of the SLO's
	// error budget the current rate consumes.
	Objective float64
	// Less compares value < Threshold instead of value > Threshold.
	Less bool
	// Threshold is the constant on the right of the comparison.
	Threshold float64
	// ForSeconds is how long the condition must hold before pending
	// escalates to firing (0 fires on first breach).
	ForSeconds int
	// WindowSeconds is the trailing window the metric aggregates over
	// (0 means the ring's full span).
	WindowSeconds int
	// Severity is free-form ("warn", "page"); page-severity firing alerts
	// flip /readyz to 503.
	Severity string
}

// Expr renders the rule back in ParseRule's syntax.
func (r *Rule) Expr() string {
	var b strings.Builder
	if r.Objective > 0 {
		fmt.Fprintf(&b, "burn %s slo %g", r.Metric, r.Objective)
	} else {
		b.WriteString(r.Metric)
	}
	op := ">"
	if r.Less {
		op = "<"
	}
	fmt.Fprintf(&b, " %s %g", op, r.Threshold)
	if r.ForSeconds > 0 {
		fmt.Fprintf(&b, " for %ds", r.ForSeconds)
	}
	if r.WindowSeconds > 0 {
		fmt.Fprintf(&b, " over %ds", r.WindowSeconds)
	}
	if r.Severity != "" {
		fmt.Fprintf(&b, " severity %s", r.Severity)
	}
	return b.String()
}

// Validate checks the rule references a known metric with sane parameters.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("obs: alert rule has no name")
	}
	if _, ok := windowMetrics[r.Metric]; !ok {
		return fmt.Errorf("obs: alert rule %q: unknown metric %q", r.Name, r.Metric)
	}
	if r.Objective < 0 || r.Objective >= 1 {
		return fmt.Errorf("obs: alert rule %q: SLO objective %g outside [0,1)", r.Name, r.Objective)
	}
	if r.ForSeconds < 0 || r.WindowSeconds < 0 {
		return fmt.Errorf("obs: alert rule %q: negative duration", r.Name)
	}
	return nil
}

// ParseRule parses the one-line rule syntax:
//
//	<name>: <metric> (>|<) <threshold> [for <N>s] [over <N>s] [severity <s>]
//	<name>: burn <metric> slo <objective> (>|<) <threshold> [for <N>s] [over <N>s] [severity <s>]
//
// Metrics: qps, error_rate, slow_rate, p50_cycles, p95_cycles, p99_cycles,
// mean_cycles, cycles_per_sec, dram_bytes_per_sec, cpu_bytes_per_sec,
// cache_miss_ratio, mean_wall_ns, mean_alloc_bytes. Thresholds accept any
// Go float literal (5e6, 0.01). Examples:
//
//	high_p99: p99_cycles > 5e6 for 10s over 30s severity page
//	err_burn: burn error_rate slo 0.99 > 14 for 5s over 60s severity page
func ParseRule(s string) (Rule, error) {
	name, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Rule{}, fmt.Errorf("obs: alert rule %q: missing \"name:\" prefix", s)
	}
	r := Rule{Name: strings.TrimSpace(name)}
	toks := strings.Fields(rest)
	i := 0
	next := func(what string) (string, error) {
		if i >= len(toks) {
			return "", fmt.Errorf("obs: alert rule %q: missing %s", r.Name, what)
		}
		t := toks[i]
		i++
		return t, nil
	}

	m, err := next("metric")
	if err != nil {
		return Rule{}, err
	}
	if m == "burn" {
		if r.Metric, err = next("burn metric"); err != nil {
			return Rule{}, err
		}
		kw, err := next("slo keyword")
		if err != nil || kw != "slo" {
			return Rule{}, fmt.Errorf("obs: alert rule %q: burn form needs \"slo <objective>\"", r.Name)
		}
		obj, err := next("slo objective")
		if err != nil {
			return Rule{}, err
		}
		if r.Objective, err = strconv.ParseFloat(obj, 64); err != nil {
			return Rule{}, fmt.Errorf("obs: alert rule %q: bad objective %q", r.Name, obj)
		}
	} else {
		r.Metric = m
	}

	op, err := next("comparison operator")
	if err != nil {
		return Rule{}, err
	}
	switch op {
	case ">":
	case "<":
		r.Less = true
	default:
		return Rule{}, fmt.Errorf("obs: alert rule %q: bad operator %q (want > or <)", r.Name, op)
	}
	th, err := next("threshold")
	if err != nil {
		return Rule{}, err
	}
	if r.Threshold, err = strconv.ParseFloat(th, 64); err != nil {
		return Rule{}, fmt.Errorf("obs: alert rule %q: bad threshold %q", r.Name, th)
	}

	for i < len(toks) {
		kw := toks[i]
		i++
		switch kw {
		case "for", "over":
			v, err := next(kw + " duration")
			if err != nil {
				return Rule{}, err
			}
			n, err := strconv.Atoi(strings.TrimSuffix(v, "s"))
			if err != nil || n < 0 {
				return Rule{}, fmt.Errorf("obs: alert rule %q: bad %s duration %q", r.Name, kw, v)
			}
			if kw == "for" {
				r.ForSeconds = n
			} else {
				r.WindowSeconds = n
			}
		case "severity":
			if r.Severity, err = next("severity"); err != nil {
				return Rule{}, err
			}
		default:
			return Rule{}, fmt.Errorf("obs: alert rule %q: unexpected token %q", r.Name, kw)
		}
	}
	if err := r.Validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// ruleState is one rule's live state machine.
type ruleState struct {
	rule       Rule
	state      AlertState
	sinceSec   int64 // when the current state was entered
	value      float64
	firedTotal uint64
}

// AlertTransition is one recorded state change.
type AlertTransition struct {
	Rule    string  `json:"rule"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	AtUnix  int64   `json:"at_unix"`
	Value   float64 `json:"value"`
	Expr    string  `json:"expr,omitempty"`
	Resolve bool    `json:"resolved,omitempty"`
}

// alertHistoryCap bounds the transition ring.
const alertHistoryCap = 128

// AlertEngine evaluates rules over a Windows aggregator.
type AlertEngine struct {
	win *Windows
	now func() int64

	mu      sync.Mutex
	rules   []*ruleState
	history []AlertTransition
	seq     uint64 // total transitions ever, for ring bookkeeping
	stop    chan struct{}
}

// NewAlertEngine builds an engine over win with the wall clock.
func NewAlertEngine(win *Windows, rules ...Rule) (*AlertEngine, error) {
	return NewAlertEngineAt(win, func() int64 { return time.Now().UnixNano() }, rules...)
}

// NewAlertEngineAt is NewAlertEngine with an injected nanosecond clock —
// share the clock with NewWindowsAt and tests control time end to end.
func NewAlertEngineAt(win *Windows, now func() int64, rules ...Rule) (*AlertEngine, error) {
	e := &AlertEngine{win: win, now: now}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		e.rules = append(e.rules, &ruleState{rule: r})
	}
	return e, nil
}

// Rules returns the configured rules in order.
func (e *AlertEngine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Rule, len(e.rules))
	for i, rs := range e.rules {
		out[i] = rs.rule
	}
	return out
}

// Evaluate runs one evaluation pass at the current clock. Call it from a
// ticker (Start does) or directly in tests and single-shot tools.
func (e *AlertEngine) Evaluate() {
	nowSec := e.now() / 1e9
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range e.rules {
		snap := e.win.Snapshot(rs.rule.WindowSeconds)
		v := windowMetrics[rs.rule.Metric](&snap)
		if rs.rule.Objective > 0 {
			v /= 1 - rs.rule.Objective
		}
		rs.value = v
		breach := v > rs.rule.Threshold
		if rs.rule.Less {
			breach = v < rs.rule.Threshold
		}
		switch {
		case breach && rs.state == AlertInactive:
			e.transition(rs, AlertPending, nowSec)
			fallthrough
		case breach && rs.state == AlertPending:
			if nowSec-rs.sinceSec >= int64(rs.rule.ForSeconds) {
				e.transition(rs, AlertFiring, nowSec)
				rs.firedTotal++
			}
		case !breach && rs.state != AlertInactive:
			e.transition(rs, AlertInactive, nowSec)
		}
	}
}

// transition records a state change into the history ring. Caller holds mu.
func (e *AlertEngine) transition(rs *ruleState, to AlertState, atSec int64) {
	t := AlertTransition{
		Rule:    rs.rule.Name,
		From:    rs.state.String(),
		To:      to.String(),
		AtUnix:  atSec,
		Value:   rs.value,
		Expr:    rs.rule.Expr(),
		Resolve: rs.state == AlertFiring && to == AlertInactive,
	}
	if len(e.history) < alertHistoryCap {
		e.history = append(e.history, t)
	} else {
		e.history[e.seq%alertHistoryCap] = t
	}
	e.seq++
	rs.state = to
	rs.sinceSec = atSec
}

// Start evaluates on a ticker until Stop. Safe to call once per engine.
func (e *AlertEngine) Start(every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	e.mu.Lock()
	if e.stop != nil {
		e.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	e.stop = stop
	e.mu.Unlock()
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.Evaluate()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the ticker started by Start.
func (e *AlertEngine) Stop() {
	e.mu.Lock()
	if e.stop != nil {
		close(e.stop)
		e.stop = nil
	}
	e.mu.Unlock()
}

// AlertStatus is one rule's exported state.
type AlertStatus struct {
	Name       string  `json:"name"`
	Expr       string  `json:"expr"`
	Severity   string  `json:"severity,omitempty"`
	State      string  `json:"state"`
	SinceUnix  int64   `json:"since_unix,omitempty"`
	Value      float64 `json:"value"`
	Threshold  float64 `json:"threshold"`
	FiredTotal uint64  `json:"fired_total"`
}

// AlertsJSON is the /debug/alerts document.
type AlertsJSON struct {
	NowUnix int64             `json:"now_unix"`
	Firing  int               `json:"firing"`
	Rules   []AlertStatus     `json:"rules"`
	History []AlertTransition `json:"history"`
}

// Snapshot exports every rule's current state plus the transition history
// (oldest first).
func (e *AlertEngine) Snapshot() AlertsJSON {
	e.mu.Lock()
	defer e.mu.Unlock()
	doc := AlertsJSON{NowUnix: e.now() / 1e9, Rules: make([]AlertStatus, 0, len(e.rules))}
	for _, rs := range e.rules {
		st := AlertStatus{
			Name:       rs.rule.Name,
			Expr:       rs.rule.Expr(),
			Severity:   rs.rule.Severity,
			State:      rs.state.String(),
			Value:      rs.value,
			Threshold:  rs.rule.Threshold,
			FiredTotal: rs.firedTotal,
		}
		if rs.state != AlertInactive {
			st.SinceUnix = rs.sinceSec
		}
		if rs.state == AlertFiring {
			doc.Firing++
		}
		doc.Rules = append(doc.Rules, st)
	}
	doc.History = make([]AlertTransition, 0, len(e.history))
	if e.seq > alertHistoryCap {
		start := e.seq % alertHistoryCap
		doc.History = append(doc.History, e.history[start:]...)
		doc.History = append(doc.History, e.history[:start]...)
	} else {
		doc.History = append(doc.History, e.history...)
	}
	return doc
}

// FiringPage reports whether any page-severity rule is currently firing —
// the condition that flips /readyz to 503.
func (e *AlertEngine) FiringPage() bool {
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range e.rules {
		if rs.state == AlertFiring && rs.rule.Severity == "page" {
			return true
		}
	}
	return false
}

// WriteJSON renders the alerts document.
func (e *AlertEngine) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e.Snapshot())
}

// Handle mounts GET /debug/alerts.
func (e *AlertEngine) Handle(mux *http.ServeMux) {
	mux.HandleFunc("/debug/alerts", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		e.WriteJSON(w)
	})
}
