package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// StatStore is the pg_stat_statements analogue: per-statement execution
// statistics keyed by normalized fingerprint (internal/sql.Fingerprint), so
// a dashboard workload whose literals shift query to query aggregates as one
// logical statement. Each entry accumulates call and error counts, modeled
// cycle and wall-clock latency histograms, rows returned and scanned, bytes
// moved per hierarchy level (DRAM-side and CPU-side), the engines the
// statement actually ran on, and the optimizer-accountability numbers — the
// cycle q-error and estimated-vs-observed selectivity — that feedback-driven
// optimization consumes.
//
// Record takes one mutex per query (not per row), so the store is safe for
// concurrent publish and read. A disabled store reduces Record to a single
// atomic load, and callers are expected to gate fingerprinting itself on
// Disabled() — normalization allocates, and the off-path must not.
type StatStore struct {
	disabled atomic.Bool

	mu    sync.Mutex
	stmts map[uint64]*stmtStats
}

// stmtStats is one fingerprint's accumulation. Guarded by the store mutex.
type stmtStats struct {
	text        string
	calls       uint64
	errors      uint64
	slow        uint64
	totalCycles uint64
	allocBytes  uint64
	rowsRet     uint64
	rowsScan    uint64
	bytesDRAM   uint64
	bytesCPU    uint64
	engines     map[string]uint64
	cycles      *Histogram
	wall        *Histogram

	// Estimated-vs-actual accounting. qErr samples exist only for calls
	// that carried a priced estimate.
	qErrSamples uint64
	qErrSum     float64
	qErrMax     float64
	selSamples  uint64
	selEstSum   float64
	selActSum   float64
}

// NewStatStore returns an empty, enabled store.
func NewStatStore() *StatStore {
	return &StatStore{stmts: map[uint64]*stmtStats{}}
}

// SetDisabled toggles recording. Snapshot and the exporters still render
// whatever was recorded while enabled.
func (s *StatStore) SetDisabled(d bool) {
	if s == nil {
		return
	}
	s.disabled.Store(d)
}

// Disabled reports whether recording is off — the one-atomic-load check the
// query path makes before spending anything on fingerprinting. A nil store
// reports true, so "no store attached" and "store disabled" share one test.
func (s *StatStore) Disabled() bool { return s == nil || s.disabled.Load() }

// StatSample is one query execution's contribution to the store.
type StatSample struct {
	Fingerprint uint64
	Text        string // normalized statement text
	Engine      string // engine that actually ran (after AUTO/PAR routing)
	Err         bool
	Slow        bool
	Cycles      uint64
	WallNanos   int64
	AllocBytes  uint64 // heap allocated during the call (process-wide delta)
	RowsRet     int64
	RowsScan    int64
	BytesDRAM   uint64
	BytesCPU    uint64

	// EstCycles is the optimizer's priced cost for the engine that ran;
	// zero means no estimate accompanied this call.
	EstCycles float64
	// EstSelectivity / ActSelectivity are the assumed and observed
	// survivor fractions; both are recorded only when HasSel is set (a
	// zero observed selectivity is meaningful).
	HasSel         bool
	EstSelectivity float64
	ActSelectivity float64
}

// Record folds one execution into the statement's entry. Nil-safe and a
// no-op when disabled.
func (s *StatStore) Record(sm StatSample) {
	if s == nil || s.disabled.Load() {
		return
	}
	s.mu.Lock()
	st, ok := s.stmts[sm.Fingerprint]
	if !ok {
		st = &stmtStats{
			text:    sm.Text,
			engines: map[string]uint64{},
			cycles:  newStandaloneHistogram(&s.disabled),
			wall:    newStandaloneHistogram(&s.disabled),
		}
		s.stmts[sm.Fingerprint] = st
	}
	st.calls++
	if sm.Err {
		st.errors++
		s.mu.Unlock()
		return
	}
	if sm.Slow {
		st.slow++
	}
	st.totalCycles += sm.Cycles
	st.allocBytes += sm.AllocBytes
	st.rowsRet += uint64(sm.RowsRet)
	st.rowsScan += uint64(sm.RowsScan)
	st.bytesDRAM += sm.BytesDRAM
	st.bytesCPU += sm.BytesCPU
	if sm.Engine != "" {
		st.engines[sm.Engine]++
	}
	if sm.EstCycles > 0 && sm.Cycles > 0 {
		q := qError(sm.EstCycles, float64(sm.Cycles))
		st.qErrSamples++
		st.qErrSum += q
		if q > st.qErrMax {
			st.qErrMax = q
		}
	}
	if sm.HasSel {
		st.selSamples++
		st.selEstSum += sm.EstSelectivity
		st.selActSum += sm.ActSelectivity
	}
	cy, wl := st.cycles, st.wall
	s.mu.Unlock()
	// Histograms carry their own locks; observing outside the store mutex
	// keeps Record's critical section to the counter folds.
	cy.Observe(float64(sm.Cycles))
	if sm.WallNanos > 0 {
		wl.Observe(float64(sm.WallNanos))
	}
}

// qError is the symmetric misprediction factor max(est/act, act/est) ≥ 1,
// the standard cardinality-estimation accuracy measure.
func qError(est, act float64) float64 {
	if est <= 0 || act <= 0 {
		return 1
	}
	if est > act {
		return est / act
	}
	return act / est
}

// FeedbackSelectivity returns the mean observed selectivity recorded for a
// statement fingerprint — the value feedback-driven planning feeds into the
// optimizer's SelOverride. ok is false when the store is nil/disabled or no
// call for this fingerprint carried a selectivity observation.
func (s *StatStore) FeedbackSelectivity(fp uint64) (float64, bool) {
	if s == nil || s.disabled.Load() {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stmts[fp]
	if !ok || st.selSamples == 0 {
		return 0, false
	}
	sel := st.selActSum / float64(st.selSamples)
	// The optimizer treats a zero override as "no override"; floor the fed
	// value at the planner's own minimum selectivity instead.
	if sel < 0.005 {
		sel = 0.005
	}
	return sel, true
}

// Len returns the number of distinct statements recorded.
func (s *StatStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stmts)
}

// Reset drops every entry (the store stays enabled or disabled as it was).
func (s *StatStore) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stmts = map[uint64]*stmtStats{}
	s.mu.Unlock()
}

// StatementRecord is one statement's exported snapshot.
type StatementRecord struct {
	Fingerprint string            `json:"fingerprint"`
	Text        string            `json:"text"`
	Calls       uint64            `json:"calls"`
	Errors      uint64            `json:"errors,omitempty"`
	SlowCalls   uint64            `json:"slow_calls,omitempty"`
	TotalCycles uint64            `json:"total_cycles"`
	MeanCycles  float64           `json:"mean_cycles"`
	P50Cycles   float64           `json:"p50_cycles"`
	P95Cycles   float64           `json:"p95_cycles"`
	P99Cycles   float64           `json:"p99_cycles"`
	P99WallNs   float64           `json:"p99_wall_ns,omitempty"`
	MeanAlloc   float64           `json:"mean_alloc_bytes,omitempty"`
	RowsRet     uint64            `json:"rows_returned"`
	RowsScan    uint64            `json:"rows_scanned"`
	BytesDRAM   uint64            `json:"bytes_from_dram"`
	BytesCPU    uint64            `json:"bytes_to_cpu"`
	Engines     map[string]uint64 `json:"engines"`

	// Optimizer accountability (absent when no call carried an estimate).
	QErrorSamples uint64  `json:"q_error_samples,omitempty"`
	MeanQError    float64 `json:"mean_q_error,omitempty"`
	MaxQError     float64 `json:"max_q_error,omitempty"`
	MeanEstSel    float64 `json:"mean_est_selectivity,omitempty"`
	MeanActSel    float64 `json:"mean_act_selectivity,omitempty"`
}

// Snapshot returns every statement's record, ordered by total modeled
// cycles descending (ties broken by fingerprint for determinism).
func (s *StatStore) Snapshot() []StatementRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StatementRecord, 0, len(s.stmts))
	for k, st := range s.stmts {
		rec := StatementRecord{
			Fingerprint: fmt.Sprintf("%016x", k),
			Text:        st.text,
			Calls:       st.calls,
			Errors:      st.errors,
			SlowCalls:   st.slow,
			TotalCycles: st.totalCycles,
			RowsRet:     st.rowsRet,
			RowsScan:    st.rowsScan,
			BytesDRAM:   st.bytesDRAM,
			BytesCPU:    st.bytesCPU,
			Engines:     map[string]uint64{},
			P50Cycles:   st.cycles.Quantile(0.50),
			P95Cycles:   st.cycles.Quantile(0.95),
			P99Cycles:   st.cycles.Quantile(0.99),
			P99WallNs:   st.wall.Quantile(0.99),
		}
		if ok := st.calls - st.errors; ok > 0 {
			rec.MeanCycles = float64(st.totalCycles) / float64(ok)
			rec.MeanAlloc = float64(st.allocBytes) / float64(ok)
		}
		for eng, n := range st.engines {
			rec.Engines[eng] = n
		}
		if st.qErrSamples > 0 {
			rec.QErrorSamples = st.qErrSamples
			rec.MeanQError = st.qErrSum / float64(st.qErrSamples)
			rec.MaxQError = st.qErrMax
		}
		if st.selSamples > 0 {
			rec.MeanEstSel = st.selEstSum / float64(st.selSamples)
			rec.MeanActSel = st.selActSum / float64(st.selSamples)
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalCycles != out[j].TotalCycles {
			return out[i].TotalCycles > out[j].TotalCycles
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// WriteJSON renders the snapshot as an indented JSON array.
func (s *StatStore) WriteJSON(w io.Writer) error {
	snap := s.Snapshot()
	if snap == nil {
		snap = []StatementRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WritePrometheus renders the per-statement series in Prometheus text
// exposition format, labeled by fingerprint. Statement text is deliberately
// not a label (unbounded cardinality); /debug/statements carries it.
func (s *StatStore) WritePrometheus(w io.Writer) {
	snap := s.Snapshot()
	writeSeries := func(name, help, typ string, value func(*StatementRecord) (float64, bool)) {
		wrote := false
		for i := range snap {
			v, ok := value(&snap[i])
			if !ok {
				continue
			}
			if !wrote {
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
				wrote = true
			}
			fmt.Fprintf(w, "%s{fingerprint=%q} %g\n", name, snap[i].Fingerprint, v)
		}
	}
	writeSeries("rfabric_stmt_calls_total", "Statement executions by fingerprint.", "counter",
		func(r *StatementRecord) (float64, bool) { return float64(r.Calls), true })
	writeSeries("rfabric_stmt_errors_total", "Statement errors by fingerprint.", "counter",
		func(r *StatementRecord) (float64, bool) { return float64(r.Errors), r.Errors > 0 })
	writeSeries("rfabric_stmt_cycles_total", "Modeled cycles by fingerprint.", "counter",
		func(r *StatementRecord) (float64, bool) { return float64(r.TotalCycles), true })
	writeSeries("rfabric_stmt_rows_returned_total", "Rows returned by fingerprint.", "counter",
		func(r *StatementRecord) (float64, bool) { return float64(r.RowsRet), true })
	writeSeries("rfabric_stmt_bytes_from_dram_total", "DRAM bytes moved by fingerprint.", "counter",
		func(r *StatementRecord) (float64, bool) { return float64(r.BytesDRAM), true })
	writeSeries("rfabric_stmt_p99_cycles", "p99 modeled cycles by fingerprint.", "gauge",
		func(r *StatementRecord) (float64, bool) { return r.P99Cycles, true })
	writeSeries("rfabric_stmt_mean_q_error", "Mean optimizer cycle q-error by fingerprint.", "gauge",
		func(r *StatementRecord) (float64, bool) { return r.MeanQError, r.QErrorSamples > 0 })
	writeSeries("rfabric_stmt_slow_total", "Slow-threshold exceedances by fingerprint.", "counter",
		func(r *StatementRecord) (float64, bool) { return float64(r.SlowCalls), r.SlowCalls > 0 })
}

// Handle mounts the statement-statistics endpoints:
//
//	GET /debug/statements      — JSON snapshot, hottest statements first
//	GET /debug/statements.prom — the same store as Prometheus text
func (s *StatStore) Handle(mux *http.ServeMux) {
	mux.HandleFunc("/debug/statements", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.WriteJSON(w)
	})
	mux.HandleFunc("/debug/statements.prom", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WritePrometheus(w)
	})
}

// newStandaloneHistogram builds a histogram outside any registry, sharing
// the owner's disabled flag.
func newStandaloneHistogram(disabled *atomic.Bool) *Histogram {
	return &Histogram{
		bounds:   DefaultBuckets(),
		buckets:  make([]uint64, len(DefaultBuckets())+1),
		disabled: disabled,
	}
}
