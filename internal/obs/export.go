package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders every series in the Prometheus text exposition
// format (version 0.0.4), sorted by name and labels so output is
// deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	cs, gs, hs := r.snapshot()
	var lastType string
	typeLine := func(name, kind string) {
		if name != lastType {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
			lastType = name
		}
	}
	for _, c := range cs {
		typeLine(c.name, "counter")
		fmt.Fprintf(w, "%s%s %d\n", c.name, c.labels, c.Value())
	}
	for _, g := range gs {
		typeLine(g.name, "gauge")
		fmt.Fprintf(w, "%s%s %g\n", g.name, g.labels, g.Value())
	}
	for _, h := range hs {
		typeLine(h.name, "histogram")
		h.mu.Lock()
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.buckets[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, withLabel(h.labels, "le", fmt.Sprintf("%g", bound)), cum)
		}
		cum += h.buckets[len(h.bounds)]
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, withLabel(h.labels, "le", "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %g\n", h.name, h.labels, h.sum)
		fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.labels, h.count)
		h.mu.Unlock()
	}
	return nil
}

// withLabel splices one extra label into an already-canonical label block.
func withLabel(labels, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

// SeriesJSON is the JSON export shape of one series. Histograms carry
// estimated quantiles (linear interpolation within buckets) alongside
// count and sum.
type SeriesJSON struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Count  uint64  `json:"count,omitempty"`
	Sum    float64 `json:"sum,omitempty"`
	P50    float64 `json:"p50,omitempty"`
	P95    float64 `json:"p95,omitempty"`
	P99    float64 `json:"p99,omitempty"`
}

// ExportJSON is the full registry dump.
type ExportJSON struct {
	Counters   []SeriesJSON `json:"counters"`
	Gauges     []SeriesJSON `json:"gauges"`
	Histograms []SeriesJSON `json:"histograms"`
}

// WriteJSON renders every series as one JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	cs, gs, hs := r.snapshot()
	out := ExportJSON{
		Counters:   make([]SeriesJSON, 0, len(cs)),
		Gauges:     make([]SeriesJSON, 0, len(gs)),
		Histograms: make([]SeriesJSON, 0, len(hs)),
	}
	for _, c := range cs {
		out.Counters = append(out.Counters, SeriesJSON{Name: c.name, Labels: c.labels, Value: float64(c.Value())})
	}
	for _, g := range gs {
		out.Gauges = append(out.Gauges, SeriesJSON{Name: g.name, Labels: g.labels, Value: g.Value()})
	}
	for _, h := range hs {
		out.Histograms = append(out.Histograms, SeriesJSON{
			Name: h.name, Labels: h.labels, Count: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
