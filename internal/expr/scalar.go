package expr

import (
	"fmt"

	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// Scalar is a per-row arithmetic expression over numeric columns. The
// engines evaluate scalars in software; the fabric's aggregation pushdown
// accepts only plain column references (AggSpec) — arbitrary arithmetic is
// exactly the kind of application-specific logic the paper keeps out of the
// hardware (§IV-B, §VII Q1).
type Scalar interface {
	// Columns returns the distinct schema columns the expression reads.
	Columns() []int
	// EvalF evaluates the expression given a value fetcher for the row.
	EvalF(get func(col int) table.Value) float64
	// Ops returns the number of arithmetic operations one evaluation
	// performs, used for CPU cycle accounting.
	Ops() int
	// Format renders the expression against a schema.
	Format(s *geometry.Schema) string
}

// ColRef reads one numeric column.
type ColRef struct{ Col int }

// Columns implements Scalar.
func (c ColRef) Columns() []int { return []int{c.Col} }

// EvalF implements Scalar.
func (c ColRef) EvalF(get func(int) table.Value) float64 {
	v := get(c.Col)
	switch v.Type {
	case geometry.Float64:
		return v.Float
	default:
		return float64(v.Int)
	}
}

// Ops implements Scalar.
func (c ColRef) Ops() int { return 0 }

// Format implements Scalar.
func (c ColRef) Format(s *geometry.Schema) string { return s.Column(c.Col).Name }

// Const is a numeric literal.
type Const struct{ V float64 }

// Columns implements Scalar.
func (Const) Columns() []int { return nil }

// EvalF implements Scalar.
func (c Const) EvalF(func(int) table.Value) float64 { return c.V }

// Ops implements Scalar.
func (Const) Ops() int { return 0 }

// Format implements Scalar.
func (c Const) Format(*geometry.Schema) string { return fmt.Sprintf("%g", c.V) }

// BinOp is an arithmetic operator for Binary scalars.
type BinOp uint8

// Arithmetic operators.
const (
	Add BinOp = iota
	Sub
	Mul
)

// String returns the operator glyph.
func (op BinOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	default:
		return fmt.Sprintf("BinOp(%d)", uint8(op))
	}
}

// Binary combines two scalars.
type Binary struct {
	Op   BinOp
	L, R Scalar
}

// Columns implements Scalar.
func (b Binary) Columns() []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range []Scalar{b.L, b.R} {
		for _, c := range s.Columns() {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// EvalF implements Scalar.
func (b Binary) EvalF(get func(int) table.Value) float64 {
	l, r := b.L.EvalF(get), b.R.EvalF(get)
	switch b.Op {
	case Add:
		return l + r
	case Sub:
		return l - r
	case Mul:
		return l * r
	default:
		panic(fmt.Sprintf("expr: unknown binary op %d", uint8(b.Op)))
	}
}

// Ops implements Scalar.
func (b Binary) Ops() int { return 1 + b.L.Ops() + b.R.Ops() }

// Format implements Scalar.
func (b Binary) Format(s *geometry.Schema) string {
	return fmt.Sprintf("(%s %s %s)", b.L.Format(s), b.Op, b.R.Format(s))
}

// Validate checks that every referenced column exists and is numeric.
func ValidateScalar(sc Scalar, s *geometry.Schema) error {
	for _, c := range sc.Columns() {
		if c < 0 || c >= s.NumColumns() {
			return fmt.Errorf("expr: scalar column %d out of range [0,%d)", c, s.NumColumns())
		}
		if s.Column(c).Type == geometry.Char {
			return fmt.Errorf("expr: scalar arithmetic over CHAR column %q", s.Column(c).Name)
		}
	}
	return nil
}
