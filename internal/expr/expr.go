// Package expr defines the minimal expression vocabulary shared by the query
// engines, the SQL planner, and the Relational Memory pushdown path:
// column-vs-constant comparison predicates (conjunctions thereof) and
// aggregate specifications. Keeping the vocabulary small is deliberate — the
// paper argues fabric hardware stays adoptable only while its operations
// remain "simple and general" (Relational Fabric, ICDE 2023, §IV-B).
package expr

import (
	"fmt"
	"strings"

	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Eq
	Ne
	Ge
	Gt
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Ge:
		return ">="
	case Gt:
		return ">"
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Holds evaluates `cmp op 0` where cmp is a three-way comparison result.
// It is the single definition of the comparison operators, shared by the
// scalar Predicate.Eval path and the vectorized kernels in internal/vec.
func (op CmpOp) Holds(cmp int) bool {
	switch op {
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Ge:
		return cmp >= 0
	case Gt:
		return cmp > 0
	default:
		panic(fmt.Sprintf("expr: unknown operator %d", uint8(op)))
	}
}

// Predicate compares one column against a constant.
type Predicate struct {
	Col     int // schema column index
	Op      CmpOp
	Operand table.Value
}

// Eval applies the predicate to a column value.
func (p Predicate) Eval(v table.Value) bool {
	return p.Op.Holds(v.Compare(p.Operand))
}

// Validate checks the predicate against a schema.
func (p Predicate) Validate(s *geometry.Schema) error {
	if p.Col < 0 || p.Col >= s.NumColumns() {
		return fmt.Errorf("expr: predicate column %d out of range [0,%d)", p.Col, s.NumColumns())
	}
	if got, want := p.Operand.Type, s.Column(p.Col).Type; got != want {
		return fmt.Errorf("expr: predicate on column %q compares %s against %s", s.Column(p.Col).Name, want, got)
	}
	return nil
}

// String renders the predicate against a schema for diagnostics.
func (p Predicate) Format(s *geometry.Schema) string {
	return fmt.Sprintf("%s %s %s", s.Column(p.Col).Name, p.Op, p.Operand)
}

// Conjunction is an AND of predicates; empty means "true".
type Conjunction []Predicate

// Validate checks every predicate against the schema.
func (c Conjunction) Validate(s *geometry.Schema) error {
	for _, p := range c {
		if err := p.Validate(s); err != nil {
			return err
		}
	}
	return nil
}

// Columns returns the distinct column indices the conjunction touches, in
// first-appearance order.
func (c Conjunction) Columns() []int {
	var out []int
	seen := map[int]bool{}
	for _, p := range c {
		if !seen[p.Col] {
			seen[p.Col] = true
			out = append(out, p.Col)
		}
	}
	return out
}

// Format renders the conjunction for diagnostics.
func (c Conjunction) Format(s *geometry.Schema) string {
	if len(c) == 0 {
		return "true"
	}
	parts := make([]string, len(c))
	for i, p := range c {
		parts[i] = p.Format(s)
	}
	return strings.Join(parts, " AND ")
}

// AggKind enumerates the aggregate functions the engines (and the fabric's
// aggregation pushdown) support.
type AggKind uint8

// Aggregate kinds.
const (
	Count AggKind = iota
	Sum
	Min
	Max
	Avg
)

// String returns the SQL spelling of the aggregate.
func (k AggKind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// AggSpec is one aggregate over a column (Col ignored for COUNT).
type AggSpec struct {
	Kind AggKind
	Col  int
}

// Validate checks the spec against a schema.
func (a AggSpec) Validate(s *geometry.Schema) error {
	if a.Kind == Count {
		return nil
	}
	if a.Col < 0 || a.Col >= s.NumColumns() {
		return fmt.Errorf("expr: aggregate column %d out of range [0,%d)", a.Col, s.NumColumns())
	}
	switch s.Column(a.Col).Type {
	case geometry.Char:
		if a.Kind == Sum || a.Kind == Avg {
			return fmt.Errorf("expr: %s over CHAR column %q", a.Kind, s.Column(a.Col).Name)
		}
	}
	return nil
}

// Accumulator folds values for one AggSpec. The zero value is not ready;
// use NewAccumulator.
type Accumulator struct {
	spec    AggSpec
	count   int64
	sumI    int64
	sumF    float64
	minV    table.Value
	maxV    table.Value
	sawAny  bool
	isFloat bool
}

// NewAccumulator prepares an accumulator for spec over schema s.
func NewAccumulator(spec AggSpec, s *geometry.Schema) (*Accumulator, error) {
	if err := spec.Validate(s); err != nil {
		return nil, err
	}
	acc := &Accumulator{spec: spec}
	if spec.Kind != Count {
		acc.isFloat = s.Column(spec.Col).Type == geometry.Float64
	}
	return acc, nil
}

// AddCount registers n qualifying rows for COUNT accumulators.
func (a *Accumulator) AddCount(n int64) { a.count += n }

// Add folds one column value.
func (a *Accumulator) Add(v table.Value) {
	a.count++
	switch a.spec.Kind {
	case Count:
		return
	case Sum, Avg:
		if a.isFloat {
			a.sumF += v.Float
		} else {
			a.sumI += v.Int
		}
	case Min:
		if !a.sawAny || v.Compare(a.minV) < 0 {
			a.minV = v
		}
	case Max:
		if !a.sawAny || v.Compare(a.maxV) > 0 {
			a.maxV = v
		}
	}
	a.sawAny = true
}

// Merge folds another accumulator of the same spec into a.
func (a *Accumulator) Merge(o *Accumulator) {
	if a.spec != o.spec {
		panic("expr: merging accumulators of different specs")
	}
	a.count += o.count
	a.sumI += o.sumI
	a.sumF += o.sumF
	if o.sawAny {
		if !a.sawAny {
			a.minV, a.maxV, a.sawAny = o.minV, o.maxV, true
		} else {
			if o.minV.Compare(a.minV) < 0 {
				a.minV = o.minV
			}
			if o.maxV.Compare(a.maxV) > 0 {
				a.maxV = o.maxV
			}
		}
	}
}

// Count returns the number of folded values.
func (a *Accumulator) Count() int64 { return a.count }

// Result returns the aggregate value. COUNT yields Int64; SUM/AVG yield
// Float64 for float columns and Int64 otherwise; MIN/MAX yield the column
// type. An empty MIN/MAX yields a zero Value.
func (a *Accumulator) Result() table.Value {
	switch a.spec.Kind {
	case Count:
		return table.I64(a.count)
	case Sum:
		if a.isFloat {
			return table.F64(a.sumF)
		}
		return table.I64(a.sumI)
	case Avg:
		if a.count == 0 {
			return table.F64(0)
		}
		if a.isFloat {
			return table.F64(a.sumF / float64(a.count))
		}
		return table.F64(float64(a.sumI) / float64(a.count))
	case Min:
		return a.minV
	case Max:
		return a.maxV
	default:
		panic(fmt.Sprintf("expr: unknown aggregate %d", uint8(a.spec.Kind)))
	}
}
