package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

func testSchema(t *testing.T) *geometry.Schema {
	t.Helper()
	return geometry.MustSchema(
		geometry.Column{Name: "a", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "b", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "c", Type: geometry.Char, Width: 4},
	)
}

func TestCmpOpSemantics(t *testing.T) {
	v := table.I64(5)
	cases := []struct {
		op      CmpOp
		operand int64
		want    bool
	}{
		{Lt, 6, true}, {Lt, 5, false},
		{Le, 5, true}, {Le, 4, false},
		{Eq, 5, true}, {Eq, 4, false},
		{Ne, 4, true}, {Ne, 5, false},
		{Ge, 5, true}, {Ge, 6, false},
		{Gt, 4, true}, {Gt, 5, false},
	}
	for _, c := range cases {
		p := Predicate{Col: 0, Op: c.op, Operand: table.I64(c.operand)}
		if got := p.Eval(v); got != c.want {
			t.Errorf("5 %s %d = %v, want %v", c.op, c.operand, got, c.want)
		}
	}
}

func TestCmpOpStrings(t *testing.T) {
	want := map[CmpOp]string{Lt: "<", Le: "<=", Eq: "=", Ne: "<>", Ge: ">=", Gt: ">"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", uint8(op), op.String(), s)
		}
	}
}

func TestPredicateValidate(t *testing.T) {
	s := testSchema(t)
	good := Predicate{Col: 0, Op: Lt, Operand: table.I64(1)}
	if err := good.Validate(s); err != nil {
		t.Errorf("valid predicate rejected: %v", err)
	}
	if err := (Predicate{Col: 9, Op: Lt, Operand: table.I64(1)}).Validate(s); err == nil {
		t.Error("out-of-range column accepted")
	}
	if err := (Predicate{Col: 0, Op: Lt, Operand: table.F64(1)}).Validate(s); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestConjunction(t *testing.T) {
	s := testSchema(t)
	c := Conjunction{
		{Col: 0, Op: Lt, Operand: table.I64(10)},
		{Col: 1, Op: Gt, Operand: table.F64(0)},
		{Col: 0, Op: Gt, Operand: table.I64(0)},
	}
	if err := c.Validate(s); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cols := c.Columns()
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 1 {
		t.Errorf("Columns = %v, want [0 1]", cols)
	}
	if got := c.Format(s); !strings.Contains(got, "AND") {
		t.Errorf("Format = %q", got)
	}
	if got := (Conjunction{}).Format(s); got != "true" {
		t.Errorf("empty conjunction formats as %q", got)
	}
}

func TestAccumulators(t *testing.T) {
	s := testSchema(t)
	type want struct {
		kind AggKind
		col  int
		res  table.Value
	}
	vals := []int64{5, -3, 12, 0}
	cases := []want{
		{Count, 0, table.I64(4)},
		{Sum, 0, table.I64(14)},
		{Min, 0, table.I64(-3)},
		{Max, 0, table.I64(12)},
		{Avg, 0, table.F64(3.5)},
	}
	for _, c := range cases {
		acc, err := NewAccumulator(AggSpec{Kind: c.kind, Col: c.col}, s)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		for _, v := range vals {
			acc.Add(table.I64(v))
		}
		if got := acc.Result(); !got.Equal(c.res) {
			t.Errorf("%s = %s, want %s", c.kind, got, c.res)
		}
	}
}

func TestAccumulatorFloat(t *testing.T) {
	s := testSchema(t)
	acc, err := NewAccumulator(AggSpec{Kind: Sum, Col: 1}, s)
	if err != nil {
		t.Fatal(err)
	}
	acc.Add(table.F64(1.5))
	acc.Add(table.F64(2.25))
	if got := acc.Result(); got.Float != 3.75 {
		t.Errorf("float SUM = %s", got)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	s := testSchema(t)
	a, _ := NewAccumulator(AggSpec{Kind: Min, Col: 0}, s)
	b, _ := NewAccumulator(AggSpec{Kind: Min, Col: 0}, s)
	a.Add(table.I64(5))
	b.Add(table.I64(2))
	a.Merge(b)
	if got := a.Result(); got.Int != 2 {
		t.Errorf("merged MIN = %s, want 2", got)
	}
	if a.Count() != 2 {
		t.Errorf("merged count = %d", a.Count())
	}
}

func TestAggSpecValidation(t *testing.T) {
	s := testSchema(t)
	if err := (AggSpec{Kind: Sum, Col: 2}).Validate(s); err == nil {
		t.Error("SUM over CHAR accepted")
	}
	if err := (AggSpec{Kind: Min, Col: 2}).Validate(s); err != nil {
		t.Errorf("MIN over CHAR rejected: %v", err)
	}
	if err := (AggSpec{Kind: Sum, Col: 99}).Validate(s); err == nil {
		t.Error("out-of-range column accepted")
	}
	if err := (AggSpec{Kind: Count, Col: -5}).Validate(s); err != nil {
		t.Errorf("COUNT ignores Col but was rejected: %v", err)
	}
}

func TestScalarEval(t *testing.T) {
	s := testSchema(t)
	// (a + 2) * b - 1
	e := Binary{
		Op: Sub,
		L: Binary{
			Op: Mul,
			L:  Binary{Op: Add, L: ColRef{Col: 0}, R: Const{V: 2}},
			R:  ColRef{Col: 1},
		},
		R: Const{V: 1},
	}
	if err := ValidateScalar(e, s); err != nil {
		t.Fatalf("ValidateScalar: %v", err)
	}
	get := func(col int) table.Value {
		if col == 0 {
			return table.I64(3)
		}
		return table.F64(4)
	}
	if got := e.EvalF(get); got != (3+2)*4-1 {
		t.Errorf("EvalF = %v, want 19", got)
	}
	if got := e.Ops(); got != 3 {
		t.Errorf("Ops = %d, want 3", got)
	}
	cols := e.Columns()
	if len(cols) != 2 {
		t.Errorf("Columns = %v", cols)
	}
	if got := e.Format(s); got != "(((a + 2) * b) - 1)" {
		t.Errorf("Format = %q", got)
	}
}

func TestValidateScalarRejectsChar(t *testing.T) {
	s := testSchema(t)
	if err := ValidateScalar(ColRef{Col: 2}, s); err == nil {
		t.Error("scalar over CHAR accepted")
	}
	if err := ValidateScalar(ColRef{Col: 42}, s); err == nil {
		t.Error("out-of-range scalar column accepted")
	}
}

// TestPredicatePartitionProperty: for any value and constant, exactly one
// of <, =, > holds, and Le/Ge/Ne are consistent with them.
func TestPredicatePartitionProperty(t *testing.T) {
	check := func(v, c int64) bool {
		val := table.I64(v)
		mk := func(op CmpOp) bool {
			return Predicate{Col: 0, Op: op, Operand: table.I64(c)}.Eval(val)
		}
		lt, eq, gt := mk(Lt), mk(Eq), mk(Gt)
		count := 0
		for _, b := range []bool{lt, eq, gt} {
			if b {
				count++
			}
		}
		return count == 1 &&
			mk(Le) == (lt || eq) &&
			mk(Ge) == (gt || eq) &&
			mk(Ne) == !eq
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestSumMergeProperty: merging two accumulators equals accumulating the
// concatenation.
func TestSumMergeProperty(t *testing.T) {
	s := testSchema(t)
	check := func(xs, ys []int32) bool {
		a, _ := NewAccumulator(AggSpec{Kind: Sum, Col: 0}, s)
		b, _ := NewAccumulator(AggSpec{Kind: Sum, Col: 0}, s)
		all, _ := NewAccumulator(AggSpec{Kind: Sum, Col: 0}, s)
		for _, x := range xs {
			a.Add(table.I64(int64(x)))
			all.Add(table.I64(int64(x)))
		}
		for _, y := range ys {
			b.Add(table.I64(int64(y)))
			all.Add(table.I64(int64(y)))
		}
		a.Merge(b)
		return a.Result().Equal(all.Result()) && a.Count() == all.Count()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
