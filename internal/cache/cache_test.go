package cache

import (
	"testing"
	"testing/quick"

	"rfabric/internal/dram"
)

func newTestHierarchy(t *testing.T, cfg HierarchyConfig) *Hierarchy {
	t.Helper()
	mem := dram.MustNew(dram.DefaultConfig())
	h, err := NewHierarchy(cfg, mem)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	return h
}

// tiny returns a small hierarchy whose capacity effects are easy to hit:
// 1 KiB 2-way L1, 4 KiB 4-way L2, no prefetch, no MLP.
func tiny(t *testing.T) *Hierarchy {
	return newTestHierarchy(t, HierarchyConfig{
		L1:       LevelConfig{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitCycles: 1},
		L2:       LevelConfig{SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, HitCycles: 10},
		Prefetch: PrefetchConfig{Streams: 0, Degree: 0, TrainHits: 1},
	})
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultHierarchy().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []HierarchyConfig{
		{L1: LevelConfig{SizeBytes: 100, Ways: 2, LineBytes: 64, HitCycles: 1}, L2: DefaultHierarchy().L2, Prefetch: DefaultPrefetch()},
		{L1: DefaultHierarchy().L1, L2: LevelConfig{SizeBytes: 1 << 20, Ways: 16, LineBytes: 128, HitCycles: 12}, Prefetch: DefaultPrefetch()},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	cfg := DefaultHierarchy()
	cfg.MLPWindow = 4
	cfg.OverlapMissCycles = 0
	if err := cfg.Validate(); err == nil {
		t.Error("MLP window without overlap cost accepted")
	}
}

func TestHitMissLadder(t *testing.T) {
	h := tiny(t)
	missCost := h.Load(0)
	l1Cost := h.Load(8) // same line: L1 hit
	if l1Cost != 1 {
		t.Errorf("L1 hit cost %d, want 1", l1Cost)
	}
	if missCost <= l1Cost {
		t.Errorf("miss (%d) not more expensive than L1 hit (%d)", missCost, l1Cost)
	}
	st := h.Stats()
	if st.Loads != 2 || st.L1Hits != 1 || st.DRAMFills != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h := tiny(t)
	// L1: 1 KiB, 2-way, 64 B lines -> 8 sets. Lines 0 and 8*64*k share set 0.
	h.Load(0)
	h.Load(8 * 64)  // same L1 set, way 2
	h.Load(16 * 64) // evicts line 0 from L1 (LRU); L2 still holds it
	cost := h.Load(0)
	if want := uint64(1 + 10); cost != want {
		t.Errorf("L2 hit cost %d, want %d", cost, want)
	}
	if got := h.Stats().L2Hits; got != 1 {
		t.Errorf("L2Hits = %d, want 1", got)
	}
}

func TestLRUWithinSet(t *testing.T) {
	h := tiny(t)
	h.Load(0)      // set 0
	h.Load(8 * 64) // set 0, second way
	h.Load(0)      // refresh line 0
	h.Load(16 * 64)
	// line 8*64 was LRU and must be gone from L1; line 0 must remain.
	if !h.ContainsL1(0) {
		t.Error("recently used line evicted")
	}
	if h.ContainsL1(8 * 64) {
		t.Error("LRU line survived")
	}
}

func TestPrefetcherCoversSequentialStream(t *testing.T) {
	cfg := DefaultHierarchy()
	h := newTestHierarchy(t, cfg)
	// Walk 64 sequential lines; after training, prefetch should turn most
	// line transitions into L2 hits.
	for i := int64(0); i < 64; i++ {
		h.Load(i * 64)
	}
	st := h.Stats()
	if st.PrefetchIssued == 0 {
		t.Fatal("prefetcher never fired on a sequential stream")
	}
	if st.PrefetchHits == 0 {
		t.Fatal("no load ever hit a prefetched line")
	}
	if st.DRAMFills > 10 {
		t.Errorf("%d demand fills on a covered stream, want few", st.DRAMFills)
	}
}

func TestPrefetcherStreamLimitThrashes(t *testing.T) {
	run := func(streams int) Stats {
		cfg := DefaultHierarchy()
		cfg.Prefetch.Streams = streams
		cfg.MLPWindow = 0
		h := newTestHierarchy(t, cfg)
		// 8 interleaved sequential streams, 1 MB apart.
		for i := int64(0); i < 256; i++ {
			for s := int64(0); s < 8; s++ {
				h.Load(s<<20 | i*64)
			}
		}
		return h.Stats()
	}
	few := run(2)
	many := run(16)
	if few.DRAMFills <= many.DRAMFills {
		t.Errorf("2-stream budget (%d demand fills) should miss more than 16-stream (%d)",
			few.DRAMFills, many.DRAMFills)
	}
}

func TestMLPOverlapsCrossBankMisses(t *testing.T) {
	base := DefaultHierarchy()
	base.Prefetch.Streams = 0

	noMLP := base
	noMLP.MLPWindow = 0
	hSerial := newTestHierarchy(t, noMLP)

	withMLP := base
	hOverlap := newTestHierarchy(t, withMLP)

	// Back-to-back misses to different banks (consecutive lines).
	var serial, overlap uint64
	for i := int64(0); i < 16; i++ {
		serial += hSerial.Load(i * 64)
		overlap += hOverlap.Load(i * 64)
	}
	if overlap >= serial {
		t.Errorf("MLP-overlapped misses (%d) not cheaper than serialized (%d)", overlap, serial)
	}
	if hOverlap.Stats().OverlappedMisses == 0 {
		t.Error("no miss was overlapped")
	}
}

func TestMLPRequiresDistinctBanks(t *testing.T) {
	cfg := DefaultHierarchy()
	cfg.Prefetch.Streams = 0
	h := newTestHierarchy(t, cfg)
	// All misses to the same bank (stride of Banks lines): never overlapped.
	stride := int64(cfg.L1.LineBytes * 8)
	for i := int64(0); i < 16; i++ {
		h.Load(i * stride)
	}
	if got := h.Stats().OverlappedMisses; got != 0 {
		t.Errorf("%d same-bank misses were overlapped", got)
	}
}

func TestFillFromFabric(t *testing.T) {
	cfg := DefaultHierarchy()
	h := newTestHierarchy(t, cfg)
	h.FillFromFabric(1 << 20)
	if !h.ContainsL2(1 << 20) {
		t.Fatal("fabric fill not resident in L2")
	}
	memBefore := h.DRAM().Stats().Accesses
	first := h.Load(1 << 20)
	if h.DRAM().Stats().Accesses != memBefore {
		t.Error("hit on fabric-filled line went to DRAM")
	}
	// First touch pays the delivery surcharge; second (L1) does not.
	second := h.Load(1<<20 + 8)
	wantFirst := uint64(cfg.L1.HitCycles + cfg.L2.HitCycles + cfg.FabricHitCycles)
	if first != wantFirst {
		t.Errorf("first fabric-line touch cost %d, want %d", first, wantFirst)
	}
	if second != uint64(cfg.L1.HitCycles) {
		t.Errorf("second touch cost %d, want L1 hit", second)
	}
	if got := h.Stats().FabricFills; got != 1 {
		t.Errorf("FabricFills = %d", got)
	}
}

func TestResetClearsEverything(t *testing.T) {
	h := newTestHierarchy(t, DefaultHierarchy())
	for i := int64(0); i < 32; i++ {
		h.Load(i * 64)
	}
	h.Reset()
	if h.Stats() != (Stats{}) {
		t.Error("stats survive Reset")
	}
	if h.ContainsL1(0) || h.ContainsL2(0) {
		t.Error("contents survive Reset")
	}
}

// TestInclusionProperty: after arbitrary loads, every line in L1 is backed
// by the simulation having loaded it, and repeated loads of a resident line
// always cost exactly the L1 hit time.
func TestRepeatLoadStableProperty(t *testing.T) {
	cfg := DefaultHierarchy()
	check := func(addrs []uint32) bool {
		h := newTestHierarchy(t, cfg)
		for _, a := range addrs {
			h.Load(int64(a))
		}
		for _, a := range addrs[:min(len(addrs), 4)] {
			h.Load(int64(a)) // ensure resident
			if h.Load(int64(a)) != uint64(cfg.L1.HitCycles) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCostMonotonicProperty: total cycles never decrease as loads are
// issued, and bytes from DRAM are a multiple of the line size.
func TestCostMonotonicProperty(t *testing.T) {
	check := func(addrs []uint32) bool {
		h := newTestHierarchy(t, DefaultHierarchy())
		var prev uint64
		for _, a := range addrs {
			h.Load(int64(a))
			st := h.Stats()
			if st.Cycles < prev {
				return false
			}
			prev = st.Cycles
			if st.BytesFromDRAM%uint64(h.LineBytes()) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
