// Package cache simulates a two-level set-associative cache hierarchy with a
// stream prefetcher. It is the instrument that makes the paper's phenomena
// observable in software: row-store scans pollute lines with unwanted
// attributes, columnar scans ride the prefetcher until they exceed its
// stream budget, and Relational Memory ships densely packed lines that waste
// no cache real estate (Relational Fabric, ICDE 2023, §II, §V).
//
// All loads are read-path only: the experiments in the paper are read-only
// scans, and the write path of the base data is charged separately by the
// table layer.
package cache

import (
	"fmt"

	"rfabric/internal/dram"
	"rfabric/internal/obs"
)

// LevelConfig sizes one cache level.
type LevelConfig struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // line size (must match across levels and DRAM)
	HitCycles int // access latency on hit
}

// Validate reports configuration errors.
func (c LevelConfig) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: LineBytes must be a positive power of two, got %d", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: Ways must be positive, got %d", c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: SizeBytes %d not divisible into %d-way sets of %d-byte lines", c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	if c.HitCycles < 0 {
		return fmt.Errorf("cache: negative HitCycles %d", c.HitCycles)
	}
	return nil
}

// PrefetchConfig parameterizes the stream prefetcher attached to L2.
type PrefetchConfig struct {
	// Streams is how many concurrent sequential streams the prefetcher can
	// track. The paper observes the A53 handles up to four parallel
	// sequential accesses efficiently (§V); beyond that streams evict each
	// other and prefetching degrades.
	Streams int
	// Degree is how many lines ahead a confirmed stream prefetches.
	Degree int
	// TrainHits is how many sequential line accesses confirm a stream.
	TrainHits int
}

// DefaultPrefetch returns the 4-stream prefetcher used throughout the
// reproduction.
func DefaultPrefetch() PrefetchConfig {
	return PrefetchConfig{Streams: 4, Degree: 4, TrainHits: 2}
}

// Validate reports configuration errors.
func (c PrefetchConfig) Validate() error {
	if c.Streams < 0 || c.Degree < 0 || c.TrainHits < 1 {
		return fmt.Errorf("cache: bad prefetch config %+v", c)
	}
	return nil
}

// HierarchyConfig configures the full L1→L2→DRAM read path.
type HierarchyConfig struct {
	L1       LevelConfig
	L2       LevelConfig
	Prefetch PrefetchConfig

	// MLPWindow models memory-level parallelism: a demand miss that follows
	// another miss within this many loads, and that targets a different DRAM
	// bank, overlaps with it and exposes only OverlapMissCycles of latency
	// instead of the full DRAM access time. Zero disables overlap (fully
	// serialized misses).
	MLPWindow int
	// OverlapMissCycles is the exposed latency of an overlapped miss.
	OverlapMissCycles int

	// FabricHitCycles is the extra latency of the first demand hit on a
	// line the fabric delivered: reading freshly DMA-ed device data pays a
	// coherence/aperture penalty a plain L2 hit does not.
	FabricHitCycles int
}

// DefaultHierarchy mirrors the paper's target platform proportions
// (32 KB L1, 1 MB shared L2) with round-number latencies.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1:                LevelConfig{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, HitCycles: 1},
		L2:                LevelConfig{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, HitCycles: 12},
		Prefetch:          DefaultPrefetch(),
		MLPWindow:         8,
		OverlapMissCycles: 24,
		FabricHitCycles:   8,
	}
}

// Validate reports configuration errors.
func (c HierarchyConfig) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.L1.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("cache: L1 line %d != L2 line %d", c.L1.LineBytes, c.L2.LineBytes)
	}
	if c.MLPWindow < 0 || (c.MLPWindow > 0 && c.OverlapMissCycles <= 0) {
		return fmt.Errorf("cache: bad MLP config window=%d overlap=%d", c.MLPWindow, c.OverlapMissCycles)
	}
	if c.FabricHitCycles < 0 {
		return fmt.Errorf("cache: negative FabricHitCycles %d", c.FabricHitCycles)
	}
	return c.Prefetch.Validate()
}

// Stats accumulates per-hierarchy counters.
type Stats struct {
	Loads            uint64
	L1Hits           uint64
	L2Hits           uint64
	PrefetchHits     uint64 // L2 hits satisfied by a prefetched line
	DRAMFills        uint64 // demand fills that went to memory
	OverlappedMisses uint64 // demand misses whose latency overlapped a prior miss
	PrefetchIssued   uint64 // lines prefetched from memory
	FabricFills      uint64 // lines installed by the fabric delivery path
	Cycles           uint64 // total demand-path cycles charged
	BytesFromDRAM    uint64 // demand + prefetch traffic
}

// MissRatio returns demand misses (to DRAM) over loads.
func (s Stats) MissRatio() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.DRAMFills) / float64(s.Loads)
}

// level is one set-associative cache with true-LRU replacement.
type level struct {
	cfg      LevelConfig
	sets     int
	setMask  int64
	lineBits uint
	// tags[set*ways+way] holds the line address (addr >> lineBits) + 1,
	// zero meaning invalid. lru holds a per-line recency stamp.
	tags []int64
	lru  []uint64
	tick uint64
	// prefetched marks lines installed by the prefetcher and not yet
	// demanded, so hits on them can be attributed.
	prefetched []bool
	// fabricNew marks lines the fabric delivered that have not yet been
	// demanded; the first demand hit pays FabricHitCycles extra.
	fabricNew []bool
}

func newLevel(cfg LevelConfig) *level {
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	l := &level{
		cfg:        cfg,
		sets:       sets,
		setMask:    int64(sets - 1),
		tags:       make([]int64, sets*cfg.Ways),
		lru:        make([]uint64, sets*cfg.Ways),
		prefetched: make([]bool, sets*cfg.Ways),
		fabricNew:  make([]bool, sets*cfg.Ways),
	}
	for lb := cfg.LineBytes; lb > 1; lb >>= 1 {
		l.lineBits++
	}
	return l
}

func (l *level) reset() {
	for i := range l.tags {
		l.tags[i] = 0
		l.lru[i] = 0
		l.prefetched[i] = false
		l.fabricNew[i] = false
	}
	l.tick = 0
}

// lookup probes for the line containing addr. On hit it refreshes recency
// and returns (slot, true).
func (l *level) lookup(addr int64) (int, bool) {
	line := addr >> l.lineBits
	set := int(line & l.setMask)
	base := set * l.cfg.Ways
	for w := 0; w < l.cfg.Ways; w++ {
		if l.tags[base+w] == line+1 {
			l.tick++
			l.lru[base+w] = l.tick
			return base + w, true
		}
	}
	return -1, false
}

// insert installs the line containing addr, evicting the LRU way, and
// returns the slot it used.
func (l *level) insert(addr int64, prefetch bool) int {
	line := addr >> l.lineBits
	set := int(line & l.setMask)
	base := set * l.cfg.Ways
	victim := base
	for w := 1; w < l.cfg.Ways; w++ {
		if l.lru[base+w] < l.lru[victim] {
			victim = base + w
		}
	}
	l.tick++
	l.tags[victim] = line + 1
	l.lru[victim] = l.tick
	l.prefetched[victim] = prefetch
	l.fabricNew[victim] = false
	return victim
}

// contains probes without touching recency (used by tests).
func (l *level) contains(addr int64) bool {
	line := addr >> l.lineBits
	set := int(line & l.setMask)
	base := set * l.cfg.Ways
	for w := 0; w < l.cfg.Ways; w++ {
		if l.tags[base+w] == line+1 {
			return true
		}
	}
	return false
}

// stream is one tracked sequential access pattern.
type stream struct {
	nextLine int64 // next expected line index
	hits     int   // training confirmations
	lastUse  uint64
	valid    bool
}

// Hierarchy is the simulated L1→L2→DRAM read path. Not safe for concurrent
// use; each simulated core owns one.
type Hierarchy struct {
	cfg     HierarchyConfig
	l1, l2  *level
	mem     *dram.Module
	streams []stream
	tick    uint64
	stats   Stats
	tl      *obs.Timeline // optional cycle sampler; nil-safe hooks

	// MLP tracking: loads since the last demand miss and the bank it hit.
	loadsSinceMiss int
	lastMissBank   int
	sawMiss        bool

	// L1 same-line fast path: the slot that served the most recent L1 hit
	// or fill. Scans load the same line many times in a row, and remembering
	// the slot skips the associative probe while performing the identical
	// state updates (recency stamp, stats, timeline), so simulated behavior
	// is unchanged. lastL1Slot is -1 when no mapping is cached.
	lastL1Line int64
	lastL1Slot int
}

// NewHierarchy builds the hierarchy on top of the given DRAM module. The
// module's line size must match the cache line size.
func NewHierarchy(cfg HierarchyConfig, mem *dram.Module) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, fmt.Errorf("cache: nil DRAM module")
	}
	if mem.LineBytes() != cfg.L1.LineBytes {
		return nil, fmt.Errorf("cache: DRAM line %d != cache line %d", mem.LineBytes(), cfg.L1.LineBytes)
	}
	return &Hierarchy{
		cfg:        cfg,
		l1:         newLevel(cfg.L1),
		l2:         newLevel(cfg.L2),
		mem:        mem,
		streams:    make([]stream, cfg.Prefetch.Streams),
		lastL1Slot: -1,
	}, nil
}

// MustHierarchy is NewHierarchy panicking on error, for fixtures.
func MustHierarchy(cfg HierarchyConfig, mem *dram.Module) *Hierarchy {
	h, err := NewHierarchy(cfg, mem)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Clone returns a fresh, cold hierarchy with the same configuration on top
// of mem. Parallel executors pair each worker's clone with its own DRAM
// module clone; a Hierarchy is single-owner state.
func (h *Hierarchy) Clone(mem *dram.Module) (*Hierarchy, error) {
	return NewHierarchy(h.cfg, mem)
}

// SetTimeline attaches (or, with nil, detaches) a cycle sampler. Clones do
// not inherit it (see dram.Module.SetTimeline).
func (h *Hierarchy) SetTimeline(tl *obs.Timeline) { h.tl = tl }

// Stats returns a copy of the accumulated statistics.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes counters but keeps cache contents.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// Reset flushes both levels, the prefetcher, and statistics.
func (h *Hierarchy) Reset() {
	h.l1.reset()
	h.l2.reset()
	for i := range h.streams {
		h.streams[i] = stream{}
	}
	h.stats = Stats{}
	h.tick = 0
	h.loadsSinceMiss = 0
	h.lastMissBank = 0
	h.sawMiss = false
	h.lastL1Line = 0
	h.lastL1Slot = -1
}

// LineBytes returns the line size of the hierarchy.
func (h *Hierarchy) LineBytes() int { return h.cfg.L1.LineBytes }

// lineOf truncates an address to its line index.
func (h *Hierarchy) lineOf(addr int64) int64 {
	return addr >> h.l1.lineBits
}

// Load charges one demand load of the byte at addr and returns its cycle
// cost. The load touches a single line; callers issue one Load per distinct
// line they read (the engine layer handles widths spanning lines).
func (h *Hierarchy) Load(addr int64) uint64 {
	h.stats.Loads++
	h.loadsSinceMiss++
	cost := uint64(h.cfg.L1.HitCycles)
	line := addr >> h.l1.lineBits
	if line == h.lastL1Line && h.lastL1Slot >= 0 {
		// Same line as the previous L1 hit/fill: skip the associative probe
		// but perform lookup's exact state updates.
		h.l1.tick++
		h.l1.lru[h.lastL1Slot] = h.l1.tick
		h.stats.L1Hits++
		h.stats.Cycles += cost
		h.tl.CacheLoad(false)
		return cost
	}
	if slot, ok := h.l1.lookup(addr); ok {
		h.lastL1Line = line
		h.lastL1Slot = slot
		h.stats.L1Hits++
		h.stats.Cycles += cost
		h.tl.CacheLoad(false)
		return cost
	}
	cost += uint64(h.cfg.L2.HitCycles)
	if slot, ok := h.l2.lookup(addr); ok {
		h.stats.L2Hits++
		if h.l2.prefetched[slot] {
			h.stats.PrefetchHits++
			h.l2.prefetched[slot] = false
		}
		if h.l2.fabricNew[slot] {
			cost += uint64(h.cfg.FabricHitCycles)
			h.l2.fabricNew[slot] = false
		}
		h.lastL1Line = line
		h.lastL1Slot = h.l1.insert(addr, false)
		h.train(addr)
		h.stats.Cycles += cost
		h.tl.CacheLoad(false)
		return cost
	}
	// Demand miss to DRAM. The full DRAM time always lands in the module's
	// occupancy statistics, but the latency exposed to this load shrinks to
	// OverlapMissCycles when the miss can overlap an immediately preceding
	// miss to a different bank (memory-level parallelism).
	dramCost := h.mem.Access(addr)
	bank := h.mem.BankOf(addr)
	overlapped := h.cfg.MLPWindow > 0 && h.sawMiss &&
		h.loadsSinceMiss <= h.cfg.MLPWindow && bank != h.lastMissBank
	if overlapped {
		cost += uint64(h.cfg.OverlapMissCycles)
		h.stats.OverlappedMisses++
	} else {
		cost += dramCost
	}
	h.sawMiss = true
	h.lastMissBank = bank
	h.loadsSinceMiss = 0
	h.stats.DRAMFills++
	h.stats.BytesFromDRAM += uint64(h.LineBytes())
	h.l2.insert(addr, false)
	h.lastL1Line = line
	h.lastL1Slot = h.l1.insert(addr, false)
	h.train(addr)
	h.stats.Cycles += cost
	h.tl.CacheLoad(true)
	return cost
}

// train feeds the prefetcher with a line-granularity demand access and lets
// confirmed streams pull lines into L2. Prefetch DRAM time is deliberately
// not charged to the demand path: a stream prefetcher's whole point is to
// overlap memory time with compute, and the paper's ≤4-column columnar wins
// exist precisely because of that overlap.
func (h *Hierarchy) train(addr int64) {
	if len(h.streams) == 0 {
		return
	}
	line := h.lineOf(addr)
	h.tick++
	// A stream that expected this line advances and may issue prefetches.
	for i := range h.streams {
		s := &h.streams[i]
		if !s.valid || s.nextLine != line {
			continue
		}
		s.hits++
		s.nextLine = line + 1
		s.lastUse = h.tick
		if s.hits >= h.cfg.Prefetch.TrainHits {
			h.issuePrefetch(line+1, h.cfg.Prefetch.Degree)
		}
		return
	}
	// Otherwise allocate a stream slot (LRU), displacing a tracked stream —
	// this is the thrash mechanism when more streams exist than slots.
	victim := 0
	for i := range h.streams {
		if !h.streams[i].valid {
			victim = i
			break
		}
		if h.streams[i].lastUse < h.streams[victim].lastUse {
			victim = i
		}
	}
	h.streams[victim] = stream{nextLine: line + 1, hits: 1, lastUse: h.tick, valid: true}
}

// issuePrefetch pulls up to n sequential lines starting at line into L2.
func (h *Hierarchy) issuePrefetch(line int64, n int) {
	lb := int64(h.LineBytes())
	for i := 0; i < n; i++ {
		addr := (line + int64(i)) * lb
		if h.l2.contains(addr) {
			continue
		}
		h.mem.Access(addr) // occupies DRAM (stats/row-buffer), off demand path
		h.l2.insert(addr, true)
		h.stats.PrefetchIssued++
		h.stats.BytesFromDRAM += uint64(h.LineBytes())
	}
}

// FillFromFabric installs a line the Relational Memory engine assembled and
// pushed toward the CPU (§IV-A step 4: "transfers the reorganized data upon
// availability"). The line lands in L2 (and is not marked prefetched — it is
// demand data the fabric produced); the DRAM traffic behind it was already
// charged to the fabric.
func (h *Hierarchy) FillFromFabric(addr int64) {
	h.stats.FabricFills++
	h.l2.insert(addr, false)
	if slot, ok := h.l2.lookup(addr); ok {
		h.l2.fabricNew[slot] = true
	}
}

// ContainsL1 reports whether the line holding addr is resident in L1.
// Intended for tests and invariant checks.
func (h *Hierarchy) ContainsL1(addr int64) bool { return h.l1.contains(addr) }

// ContainsL2 reports whether the line holding addr is resident in L2.
func (h *Hierarchy) ContainsL2(addr int64) bool { return h.l2.contains(addr) }

// DRAM exposes the backing module (shared with the fabric).
func (h *Hierarchy) DRAM() *dram.Module { return h.mem }
