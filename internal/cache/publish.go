package cache

import "rfabric/internal/obs"

// Delta returns the counters accumulated since prev. All Stats fields are
// monotonically increasing, so a component-wise subtraction is exact.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Loads:            s.Loads - prev.Loads,
		L1Hits:           s.L1Hits - prev.L1Hits,
		L2Hits:           s.L2Hits - prev.L2Hits,
		PrefetchHits:     s.PrefetchHits - prev.PrefetchHits,
		DRAMFills:        s.DRAMFills - prev.DRAMFills,
		OverlappedMisses: s.OverlappedMisses - prev.OverlappedMisses,
		PrefetchIssued:   s.PrefetchIssued - prev.PrefetchIssued,
		FabricFills:      s.FabricFills - prev.FabricFills,
		Cycles:           s.Cycles - prev.Cycles,
		BytesFromDRAM:    s.BytesFromDRAM - prev.BytesFromDRAM,
	}
}

// Publish adds this stats snapshot (typically a Delta) into the registry as
// rfabric_cache_* counters plus the derived miss-ratio gauge.
func (s Stats) Publish(reg *obs.Registry, labels obs.Labels) {
	if reg == nil {
		return
	}
	reg.Counter("rfabric_cache_loads_total", labels).Add(s.Loads)
	reg.Counter("rfabric_cache_l1_hits_total", labels).Add(s.L1Hits)
	reg.Counter("rfabric_cache_l2_hits_total", labels).Add(s.L2Hits)
	reg.Counter("rfabric_cache_prefetch_hits_total", labels).Add(s.PrefetchHits)
	reg.Counter("rfabric_cache_dram_fills_total", labels).Add(s.DRAMFills)
	reg.Counter("rfabric_cache_overlapped_misses_total", labels).Add(s.OverlappedMisses)
	reg.Counter("rfabric_cache_prefetch_issued_total", labels).Add(s.PrefetchIssued)
	reg.Counter("rfabric_cache_fabric_fills_total", labels).Add(s.FabricFills)
	reg.Counter("rfabric_cache_cycles_total", labels).Add(s.Cycles)
	reg.Counter("rfabric_cache_bytes_from_dram_total", labels).Add(s.BytesFromDRAM)
	reg.Gauge("rfabric_cache_miss_ratio", labels).Set(s.MissRatio())
}
