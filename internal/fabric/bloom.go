package fabric

import (
	"rfabric/internal/table"
)

// Bloom is a fabric-resident Bloom filter over canonical join-key bytes. The
// engine builds it from a join's build side and hands it to an Ephemeral
// view so probe rows that cannot possibly match are dropped near memory and
// never cross to the CPU. False positives only cost shipped bytes that the
// CPU-side probe rejects anyway; false negatives are impossible because both
// sides of the join encode keys through the same closure.
type Bloom struct {
	bits []uint64
	mask uint64
	k    int
	n    int
}

// bloomHashesPerKey is the probe count; with ~10 bits per key this lands the
// false-positive rate around 1-2%, cheap enough to be pure upside for the
// pre-filter use case.
const bloomHashesPerKey = 4

// NewBloom sizes a filter for the expected number of distinct keys at ~10
// bits per key, rounded up to a power of two so probes are mask operations.
func NewBloom(expectedKeys int) *Bloom {
	bits := uint64(64)
	want := uint64(expectedKeys) * 10
	for bits < want {
		bits <<= 1
	}
	return &Bloom{
		bits: make([]uint64, bits/64),
		mask: bits - 1,
		k:    bloomHashesPerKey,
	}
}

// fnv64a is the 64-bit FNV-1a hash; the second value is the same hash over
// the bytes reversed, giving an independent-enough pair for double hashing.
func bloomHash(key []byte) (uint64, uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h1 := uint64(offset64)
	for _, b := range key {
		h1 ^= uint64(b)
		h1 *= prime64
	}
	h2 := uint64(offset64)
	for i := len(key) - 1; i >= 0; i-- {
		h2 ^= uint64(key[i])
		h2 *= prime64
	}
	// Double hashing degenerates when the step is even (it can only walk half
	// the table), so force it odd.
	h2 |= 1
	return h1, h2
}

// Add inserts a canonical key.
func (b *Bloom) Add(key []byte) {
	h1, h2 := bloomHash(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) & b.mask
		b.bits[pos>>6] |= 1 << (pos & 63)
	}
	b.n++
}

// MayContain reports whether key could have been added. A false result is
// definitive.
func (b *Bloom) MayContain(key []byte) bool {
	h1, h2 := bloomHash(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) & b.mask
		if b.bits[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// Keys returns how many keys were added.
func (b *Bloom) Keys() int { return b.n }

// SemiJoin pre-filters a view's rows against a build-side Bloom filter: the
// fabric encodes row Col through Key and drops rows whose key cannot be in
// the filter. Key returns ok=false for values that can never join (the
// engine's convention for NaN keys), which also drops the row. The engine
// supplies Key so the canonical join-key byte encoding lives in exactly one
// place and the filter can never produce a false negative.
type SemiJoin struct {
	Col    int
	Key    func(dst []byte, v table.Value) ([]byte, bool)
	Filter *Bloom
}
