package fabric

import (
	"sync"
	"testing"

	"rfabric/internal/dram"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

func gcFixture(t *testing.T) (*table.Table, *geometry.Schema) {
	t.Helper()
	sch := geometry.MustSchema(
		geometry.Column{Name: "a", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "b", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "c", Type: geometry.Int32, Width: 4},
	)
	tbl, err := table.New("gc", sch, table.WithCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	row := make([]byte, sch.RowBytes())
	for i := 0; i < 8; i++ {
		if _, err := tbl.AppendRaw(1, row); err != nil {
			t.Fatal(err)
		}
	}
	return tbl, sch
}

func gcGeom(t *testing.T, sch *geometry.Schema, cols ...int) *geometry.Geometry {
	t.Helper()
	g, err := geometry.NewGeometry(sch, cols...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func gcInstall(t *testing.T, c *GroupCache, tbl *table.Table, geom *geometry.Geometry, chunkBytes int) {
	t.Helper()
	rec := c.NewRecorder(tbl, geom, nil, nil, 4, 64)
	rec.Add(make([]byte, chunkBytes), chunkBytes/4, chunkBytes/4)
	rec.Install()
}

func newArena(t *testing.T) *dram.Arena {
	t.Helper()
	a, err := dram.NewArena(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGroupCacheHitAndRelease(t *testing.T) {
	tbl, sch := gcFixture(t)
	c := NewGroupCache(1<<20, newArena(t))
	geom := gcGeom(t, sch, 0)

	if _, ok := c.Acquire(tbl, geom, nil, nil); ok {
		t.Fatal("empty cache reported a hit")
	}
	gcInstall(t, c, tbl, geom, 256)
	e, ok := c.Acquire(tbl, geom, nil, nil)
	if !ok {
		t.Fatal("installed group missed")
	}
	if e.PackedWidth() != 4 || len(e.Chunks()) != 1 || e.Chunks()[0].Rows != 64 {
		t.Fatalf("entry shape: packed=%d chunks=%+v", e.PackedWidth(), e.Chunks())
	}
	c.Release(e)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Installs != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if info, ok := c.Peek(tbl, geom, nil, nil); !ok || info.Bytes != 256 || info.Chunks != 1 {
		t.Fatalf("peek: %+v ok=%v", info, ok)
	}
	if got := c.Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("Peek perturbed counters: %+v", got)
	}
}

func TestGroupCacheLRUEvictionByBytes(t *testing.T) {
	tbl, sch := gcFixture(t)
	c := NewGroupCache(1024, newArena(t))
	g0, g1, g2 := gcGeom(t, sch, 0), gcGeom(t, sch, 1), gcGeom(t, sch, 2)

	gcInstall(t, c, tbl, g0, 512)
	gcInstall(t, c, tbl, g1, 512)
	// Touch g1 so g0 is the LRU victim when g2 needs room.
	if e, ok := c.Acquire(tbl, g1, nil, nil); ok {
		c.Release(e)
	} else {
		t.Fatal("g1 missed before eviction")
	}
	gcInstall(t, c, tbl, g2, 512)

	if _, ok := c.Peek(tbl, g0, nil, nil); ok {
		t.Fatal("LRU entry g0 survived eviction")
	}
	if _, ok := c.Peek(tbl, g1, nil, nil); !ok {
		t.Fatal("recently used g1 was evicted")
	}
	if _, ok := c.Peek(tbl, g2, nil, nil); !ok {
		t.Fatal("newly installed g2 not resident")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.BytesCached != 1024 {
		t.Fatalf("stats after eviction: %+v", st)
	}

	// A group larger than the whole cache is never installed.
	gcInstall(t, c, tbl, gcGeom(t, sch, 0, 1), 2048)
	if _, ok := c.Peek(tbl, gcGeom(t, sch, 0, 1), nil, nil); ok {
		t.Fatal("oversized group was installed")
	}
}

func TestGroupCachePinBlocksEviction(t *testing.T) {
	tbl, sch := gcFixture(t)
	c := NewGroupCache(1024, newArena(t))
	g0, g1 := gcGeom(t, sch, 0), gcGeom(t, sch, 1)

	gcInstall(t, c, tbl, g0, 1024)
	e, ok := c.Acquire(tbl, g0, nil, nil)
	if !ok {
		t.Fatal("pinned group missed")
	}
	// Installing g1 needs the pinned entry's bytes; it must fail, not evict.
	gcInstall(t, c, tbl, g1, 512)
	if _, ok := c.Peek(tbl, g0, nil, nil); !ok {
		t.Fatal("pinned entry was evicted")
	}
	if _, ok := c.Peek(tbl, g1, nil, nil); ok {
		t.Fatal("install succeeded despite a pinned cache-full entry")
	}
	// The pinned holder keeps consistent data regardless.
	if len(e.Data()) != 1024 {
		t.Fatalf("pinned data length %d", len(e.Data()))
	}
	c.Release(e)
	gcInstall(t, c, tbl, g1, 512)
	if _, ok := c.Peek(tbl, g1, nil, nil); !ok {
		t.Fatal("install still failing after release")
	}
}

func TestGroupCacheEpochAndVersionInvalidation(t *testing.T) {
	tbl, sch := gcFixture(t)
	c := NewGroupCache(1<<20, newArena(t))
	geom := gcGeom(t, sch, 0)

	gcInstall(t, c, tbl, geom, 256)
	c.Invalidate(tbl)
	if _, ok := c.Peek(tbl, geom, nil, nil); ok {
		t.Fatal("entry survived façade invalidation")
	}
	if st := c.Stats(); st.Invalidations != 1 || st.Entries != 0 {
		t.Fatalf("stats after invalidate: %+v", st)
	}

	// Raw-handle writes move table.Version; a group recorded before the
	// write is stale even though no façade epoch was bumped.
	gcInstall(t, c, tbl, geom, 256)
	if _, err := tbl.AppendRaw(1, make([]byte, sch.RowBytes())); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Acquire(tbl, geom, nil, nil); ok {
		t.Fatal("entry survived a raw-handle write")
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("version staleness not counted: %+v", st)
	}

	// A recorder opened before a write installs a group that is already
	// stale; it must never serve a hit.
	rec := c.NewRecorder(tbl, geom, nil, nil, 4, 64)
	rec.Add(make([]byte, 128), 32, 32)
	if _, err := tbl.AppendRaw(1, make([]byte, sch.RowBytes())); err != nil {
		t.Fatal(err)
	}
	rec.Install()
	if _, ok := c.Acquire(tbl, geom, nil, nil); ok {
		t.Fatal("stale recording served a hit")
	}

	gcInstall(t, c, tbl, geom, 256)
	c.InvalidateAll()
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("InvalidateAll left %d entries", st.Entries)
	}
}

func TestGroupCacheConcurrentAcquireRelease(t *testing.T) {
	tbl, sch := gcFixture(t)
	c := NewGroupCache(1<<20, newArena(t))
	geoms := []*geometry.Geometry{gcGeom(t, sch, 0), gcGeom(t, sch, 1), gcGeom(t, sch, 2)}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g := geoms[(w+i)%len(geoms)]
				if e, ok := c.Acquire(tbl, g, nil, nil); ok {
					_ = e.Data()
					c.Release(e)
				} else {
					rec := c.NewRecorder(tbl, g, nil, nil, 4, 64)
					rec.Add(make([]byte, 256), 64, 64)
					rec.Install()
				}
				if i%50 == 25 {
					c.Invalidate(tbl)
				}
				c.Stats()
				c.Peek(tbl, g, nil, nil)
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Installs == 0 || st.Invalidations == 0 {
		t.Fatalf("stress never exercised the cache: %+v", st)
	}
}
