package fabric

import (
	"fmt"

	"rfabric/internal/expr"
	"rfabric/internal/table"
)

// AggregateResult is the outcome of an aggregation pushed into the fabric.
type AggregateResult struct {
	// Values holds one result per requested AggSpec, in order.
	Values []table.Value
	// RowsScanned and RowsQualified describe the scan behind the result.
	RowsScanned   int
	RowsQualified int
	// ProducerCycles is the full CPU-cycle cost of the fabric-side scan:
	// since only the results are shipped, there is no consumer side at all
	// beyond reading a handful of values (§IV-B: "the ephemeral variables
	// will contain only ... the aggregation result").
	ProducerCycles uint64
}

// Aggregate pushes the given aggregates into the fabric over this view's
// selection and snapshot. The base data never crosses toward the CPU; the
// fabric streams it bank-parallel, filters, folds, and ships only the
// results.
func (ev *Ephemeral) Aggregate(specs []expr.AggSpec) (*AggregateResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("fabric: no aggregate specs")
	}
	sch := ev.tbl.Schema()
	accs := make([]*expr.Accumulator, len(specs))
	for i, sp := range specs {
		// Aggregated columns must be part of the configured geometry: the
		// gather program is fixed at configure time, like real hardware.
		if sp.Kind != expr.Count && !ev.geom.Contains(sp.Col) {
			return nil, fmt.Errorf("fabric: aggregate over column %q not in configured geometry %s",
				sch.Column(sp.Col).Name, ev.geom)
		}
		a, err := expr.NewAccumulator(sp, sch)
		if err != nil {
			return nil, err
		}
		accs[i] = a
	}

	// Precompute each spec's offset within a packed row.
	type foldPlan struct {
		count  bool
		offset int
		width  int
	}
	plans := make([]foldPlan, len(specs))
	for i, sp := range specs {
		if sp.Kind == expr.Count {
			plans[i] = foldPlan{count: true}
			continue
		}
		pos := ev.geom.Position(sp.Col)
		plans[i] = foldPlan{offset: ev.geom.PackedOffset(pos), width: sch.Column(sp.Col).Width}
	}

	e := ev.eng
	ev.Reset()
	var producer uint64
	scanned, qualified := 0, 0

	// Reuse the chunked production loop, but fold instead of shipping. The
	// datapath cost per qualifying row adds AggregateCycles per folded
	// value; lines are not shipped.
	for ev.cursor < ev.tbl.NumRows() {
		ch, ok := ev.Next()
		if !ok {
			break
		}
		// Undo the shipping accounting Next performed: nothing leaves the
		// fabric for an aggregation pushdown.
		e.stats.BytesShipped -= uint64(len(ch.Data))
		e.stats.LinesShipped -= uint64((len(ch.Data) + e.mem.LineBytes() - 1) / e.mem.LineBytes())

		scanned += ch.SourceRows
		qualified += ch.Rows

		// Fold the packed rows. The accumulators sit in the datapath and
		// fold at line rate, so folding adds no producer time — only the
		// result assembly at the end is charged (below).
		for r := 0; r < ch.Rows; r++ {
			row := ch.Data[r*ev.packed : (r+1)*ev.packed]
			for i, sp := range specs {
				if plans[i].count {
					accs[i].AddCount(1)
					continue
				}
				v := table.DecodeColumn(sch.Column(sp.Col), row[plans[i].offset:plans[i].offset+plans[i].width])
				accs[i].Add(v)
			}
		}
		producer += ch.ProducerCycles
	}
	finalFold := uint64(len(specs)*e.cfg.AggregateCycles) * uint64(e.cfg.ClockRatio)
	e.stats.ComputeCycles += finalFold
	producer += finalFold
	e.stats.Aggregates += uint64(len(specs))

	out := &AggregateResult{
		Values:         make([]table.Value, len(specs)),
		RowsScanned:    scanned,
		RowsQualified:  qualified,
		ProducerCycles: producer,
	}
	for i, a := range accs {
		out.Values[i] = a.Result()
	}
	return out, nil
}
