package fabric

import (
	"errors"
	"fmt"

	"rfabric/internal/dram"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// ViewOption configures an ephemeral view.
type ViewOption func(*viewOptions)

type viewOptions struct {
	snapshotTS  uint64
	hasSnap     bool
	preds       expr.Conjunction
	semi        *SemiJoin
	dictFilters []DictFilter
}

// WithSnapshot pins the view to an MVCC snapshot: only row versions with
// begin <= ts < end are packed. Requires a table built table.WithMVCC.
func WithSnapshot(ts uint64) ViewOption {
	return func(o *viewOptions) { o.snapshotTS = ts; o.hasSnap = true }
}

// WithSelection pushes the predicate conjunction into the fabric: only
// qualifying rows are packed and shipped (§IV-B).
func WithSelection(preds expr.Conjunction) ViewOption {
	return func(o *viewOptions) { o.preds = preds }
}

// WithSemiJoin pre-filters the view's rows against a build-side Bloom filter
// so probe rows that cannot join are dropped before they ship (the Farview
// near-memory semi-join). Rows whose key can never match (sj.Key returns
// ok=false) are dropped too.
func WithSemiJoin(sj *SemiJoin) ViewOption {
	return func(o *viewOptions) {
		if sj != nil {
			o.semi = sj
		}
	}
}

// WithDictFilter pushes a code-domain predicate over a dictionary-encoded
// column: rows whose stored code is outside the qualifying set are dropped
// without decoding. The one-time dictionary translation (Entries decodes at
// DecodeCycles each) is charged to the view's first chunk, fabric-side.
func WithDictFilter(f DictFilter) ViewOption {
	return func(o *viewOptions) { o.dictFilters = append(o.dictFilters, f) }
}

// Ephemeral is a configured non-materialized column-group view of a row
// table — the paper's "ephemeral variable" (Fig. 3). Consuming it drives the
// underlying machinery: each Next call refills the on-fabric buffer with the
// next chunk of packed rows.
type Ephemeral struct {
	eng  *Engine
	tbl  *table.Table
	geom *geometry.Geometry
	opts viewOptions

	deliveryBase int64 // simulated address of the (rotating) delivery window
	chunkRows    int   // source rows scanned per buffer refill
	packed       int   // bytes per packed row

	// gatherStrides is the per-row byte ranges the fabric reads: the MVCC
	// header (when present), the geometry's columns, and any predicate-only
	// columns, merged into contiguous runs.
	gatherStrides []geometry.Stride
	// shipStrides is the subset of per-row ranges that are packed and
	// shipped (geometry columns only), in pack order.
	shipStrides []geometry.Stride

	buf    []byte // reusable chunk buffer, BufferBytes capacity
	reqs   []dram.GatherReq
	cursor int    // next source row to scan
	keyBuf []byte // scratch for semi-join key encoding

	// pendingFabricCycles/pendingDecodes hold the one-time dictionary
	// translation cost from WithDictFilter. They are consumed into the first
	// chunk rather than charged at Configure time so the cost lands inside
	// the caller's measured window (pipelines snapshot fabric stats after the
	// view is configured).
	pendingFabricCycles uint64
	pendingDecodes      uint64
}

// Chunk is one buffer refill worth of packed rows.
type Chunk struct {
	// Rows is the number of packed rows in the chunk.
	Rows int
	// Data holds Rows * PackedWidth bytes; valid until the next Next call.
	Data []byte
	// BaseAddr is the simulated address of Data[0] inside the delivery
	// window. Line i of the chunk lives at BaseAddr + i*LineBytes.
	BaseAddr int64
	// ProducerCycles is the CPU-cycle cost of producing the chunk on the
	// fabric: the DRAM gather critical path overlapped with datapath work.
	ProducerCycles uint64
	// SourceRows is how many row versions were scanned for this chunk.
	SourceRows int
}

// Configure creates an ephemeral view of geom over tbl — the software twin
// of Fig. 3's configure(the_table, QUERY). The view is positioned before the
// first row.
func (e *Engine) Configure(tbl *table.Table, geom *geometry.Geometry, opts ...ViewOption) (*Ephemeral, error) {
	if tbl == nil {
		return nil, errors.New("fabric: nil table")
	}
	if geom == nil {
		return nil, errors.New("fabric: nil geometry")
	}
	if geom.Schema() != tbl.Schema() {
		return nil, fmt.Errorf("fabric: geometry schema does not match table %q", tbl.Name())
	}
	var o viewOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.hasSnap && !tbl.HasMVCC() {
		return nil, fmt.Errorf("fabric: snapshot requested but table %q has no MVCC header", tbl.Name())
	}
	if err := o.preds.Validate(tbl.Schema()); err != nil {
		return nil, err
	}
	ncols := tbl.Schema().NumColumns()
	if sj := o.semi; sj != nil {
		if sj.Col < 0 || sj.Col >= ncols {
			return nil, fmt.Errorf("fabric: semi-join column %d out of range", sj.Col)
		}
		if sj.Key == nil || sj.Filter == nil {
			return nil, errors.New("fabric: semi-join needs a key encoder and a Bloom filter")
		}
	}
	for _, f := range o.dictFilters {
		if f.Col < 0 || f.Col >= ncols {
			return nil, fmt.Errorf("fabric: dictionary filter column %d out of range", f.Col)
		}
		if f.Codes == nil {
			return nil, fmt.Errorf("fabric: dictionary filter on column %d has no code set", f.Col)
		}
	}

	ev := &Ephemeral{
		eng:    e,
		tbl:    tbl,
		geom:   geom,
		opts:   o,
		packed: geom.PackedWidth(),
	}
	for _, f := range o.dictFilters {
		ev.pendingFabricCycles += uint64(f.Entries) * uint64(e.cfg.DecodeCycles)
		ev.pendingDecodes += uint64(f.Entries)
	}
	ev.buildStrides()

	ev.chunkRows = e.cfg.BufferBytes / ev.packed
	if ev.chunkRows < 1 {
		return nil, fmt.Errorf("fabric: packed row of %d bytes exceeds buffer of %d", ev.packed, e.cfg.BufferBytes)
	}
	ev.deliveryBase = e.arena.Alloc(int64(e.cfg.BufferBytes))
	ev.buf = make([]byte, 0, e.cfg.BufferBytes)
	return ev, nil
}

// buildStrides computes the gather program (what the fabric reads per row)
// and the ship program (what it packs, in pack order). Offsets are relative
// to the row's physical start (including any MVCC header).
func (ev *Ephemeral) buildStrides() {
	payloadOff := 0
	if ev.tbl.HasMVCC() {
		payloadOff = table.MVCCHeaderBytes
	}

	// Ship strides: geometry columns in pack order, offset by the header.
	sch := ev.tbl.Schema()
	ev.shipStrides = ev.shipStrides[:0]
	for _, c := range ev.geom.Columns() {
		ev.shipStrides = append(ev.shipStrides, geometry.Stride{
			Offset: payloadOff + sch.Offset(c),
			Width:  sch.Column(c).Width,
		})
	}

	// Gather strides: header + geometry + predicate columns, merged.
	cols := map[int]bool{}
	for _, c := range ev.geom.Columns() {
		cols[c] = true
	}
	for _, c := range ev.opts.preds.Columns() {
		cols[c] = true
	}
	if ev.opts.semi != nil {
		cols[ev.opts.semi.Col] = true
	}
	for _, f := range ev.opts.dictFilters {
		cols[f.Col] = true
	}
	type rng struct{ off, w int }
	var ranges []rng
	if ev.tbl.HasMVCC() {
		ranges = append(ranges, rng{0, table.MVCCHeaderBytes})
	}
	for c := 0; c < sch.NumColumns(); c++ {
		if cols[c] {
			ranges = append(ranges, rng{payloadOff + sch.Offset(c), sch.Column(c).Width})
		}
	}
	// ranges are in ascending offset order already (header first, then
	// schema order). Coalesce ranges whose gap is smaller than one DRAM
	// burst: fetching the hole costs no extra burst, and issuing one longer
	// request is strictly cheaper than two — the same coalescing a real
	// gather engine performs when programming its AXI bursts.
	burst := ev.eng.mem.BurstBytes()
	ev.gatherStrides = ev.gatherStrides[:0]
	for _, r := range ranges {
		if n := len(ev.gatherStrides); n > 0 {
			prev := &ev.gatherStrides[n-1]
			if gap := r.off - (prev.Offset + prev.Width); gap < burst {
				prev.Width = r.off + r.w - prev.Offset
				continue
			}
		}
		ev.gatherStrides = append(ev.gatherStrides, geometry.Stride{Offset: r.off, Width: r.w})
	}
}

// Geometry returns the view's column group.
func (ev *Ephemeral) Geometry() *geometry.Geometry { return ev.geom }

// Table returns the base table.
func (ev *Ephemeral) Table() *table.Table { return ev.tbl }

// PackedWidth returns bytes per packed row.
func (ev *Ephemeral) PackedWidth() int { return ev.packed }

// DeliveryBase returns the simulated address of the delivery window.
func (ev *Ephemeral) DeliveryBase() int64 { return ev.deliveryBase }

// GatherBytesPerRow returns how many bytes the fabric requests from DRAM per
// scanned row, after rounding each stride up to DRAM bursts.
func (ev *Ephemeral) GatherBytesPerRow() int {
	burst := ev.eng.mem.BurstBytes()
	total := 0
	for _, s := range ev.gatherStrides {
		// A stride may start mid-burst; worst-case alignment covers
		// one extra burst. Use the exact row-0 alignment.
		first := s.Offset &^ (burst - 1)
		last := (s.Offset + s.Width - 1) &^ (burst - 1)
		total += last - first + burst
	}
	return total
}

// Reset repositions the view before the first row so it can be consumed
// again (a fresh query over the same configuration).
func (ev *Ephemeral) Reset() { ev.cursor = 0 }

// Next produces the next chunk of packed rows. It returns ok=false when the
// table is exhausted.
func (ev *Ephemeral) Next() (Chunk, bool) {
	if ev.cursor >= ev.tbl.NumRows() {
		return Chunk{}, false
	}
	e := ev.eng
	lineBytes := int64(e.mem.LineBytes())

	end := ev.cursor + ev.chunkRows
	if end > ev.tbl.NumRows() {
		end = ev.tbl.NumRows()
	}

	// Phase 1: issue gathers for every scanned row's strides, bounded by
	// the request-queue depth.
	ev.reqs = ev.reqs[:0]
	var gatherCycles uint64
	flush := func() {
		if len(ev.reqs) > 0 {
			gatherCycles += e.mem.GatherBatch(ev.reqs)
			ev.reqs = ev.reqs[:0]
		}
	}
	for r := ev.cursor; r < end; r++ {
		base := ev.tbl.RowAddr(r)
		for _, s := range ev.gatherStrides {
			ev.reqs = append(ev.reqs, dram.GatherReq{Addr: base + int64(s.Offset), Bytes: s.Width})
			if len(ev.reqs) >= e.cfg.MaxOutstanding {
				flush()
			}
		}
	}
	flush()

	// Phase 2: visibility + selection + packing, on the real bytes.
	ev.buf = ev.buf[:0]
	var fabricCycles uint64
	// Consume any one-time dictionary translation cost into this chunk.
	if ev.pendingFabricCycles > 0 {
		fabricCycles += ev.pendingFabricCycles
		e.stats.EntriesDecoded += ev.pendingDecodes
		ev.pendingFabricCycles, ev.pendingDecodes = 0, 0
	}
	rowsShipped := 0
	var semiDropped, codeDropped uint64
	for r := ev.cursor; r < end; r++ {
		if ev.tbl.HasMVCC() {
			fabricCycles += uint64(e.cfg.TSCheckCycles)
			if ev.opts.hasSnap && !ev.tbl.VisibleAt(r, ev.opts.snapshotTS) {
				continue
			}
		}
		if len(ev.opts.preds) > 0 {
			fabricCycles += uint64(len(ev.opts.preds) * e.cfg.PredicateCycles)
			if !ev.rowQualifies(r) {
				continue
			}
		}
		if len(ev.opts.dictFilters) > 0 {
			fabricCycles += uint64(len(ev.opts.dictFilters) * e.cfg.PredicateCycles)
			if !ev.codesQualify(r) {
				codeDropped++
				continue
			}
		}
		if ev.opts.semi != nil {
			fabricCycles += uint64(e.cfg.PredicateCycles)
			if !ev.semiQualifies(r) {
				semiDropped++
				continue
			}
		}
		rowStart := ev.tbl.RowAddr(r) - ev.tbl.BaseAddr()
		data := ev.tbl.Data()
		for _, s := range ev.shipStrides {
			off := rowStart + int64(s.Offset)
			ev.buf = append(ev.buf, data[off:off+int64(s.Width)]...)
		}
		rowsShipped++
	}

	// Datapath throughput: the pipeline retires RowsPerCycle row
	// descriptors or BeatBytes gathered bytes per fabric cycle, whichever
	// binds for this geometry.
	srcRows := end - ev.cursor
	gatherBytes := uint64(srcRows) * uint64(ev.GatherBytesPerRow())
	rowCycles := uint64((srcRows + e.cfg.RowsPerCycle - 1) / e.cfg.RowsPerCycle)
	beatCycles := (gatherBytes + uint64(e.cfg.BeatBytes) - 1) / uint64(e.cfg.BeatBytes)
	if beatCycles > rowCycles {
		fabricCycles += beatCycles
	} else {
		fabricCycles += rowCycles
	}
	linesShipped := (len(ev.buf) + int(lineBytes) - 1) / int(lineBytes)
	computeCPU := e.computeCPUCycles(fabricCycles)

	// The datapath overlaps with the DRAM gathers; the chunk is ready after
	// the slower of the two, plus the refill handshake.
	producer := gatherCycles
	if computeCPU > producer {
		producer = computeCPU
	}
	producer += uint64(e.cfg.RefillCycles)
	// The datapath is busy for its compute time; the rest of the producer
	// critical path is stall (waiting on gathers / the refill handshake).
	e.tl.FabricChunk(computeCPU, producer-computeCPU)

	ev.cursor = end

	e.stats.RowsScanned += uint64(srcRows)
	e.stats.RowsShipped += uint64(rowsShipped)
	e.stats.BytesShipped += uint64(len(ev.buf))
	e.stats.LinesShipped += uint64(linesShipped)
	e.stats.BytesGathered += gatherBytes
	e.stats.GatherCycles += gatherCycles
	e.stats.ComputeCycles += computeCPU
	e.stats.Chunks++
	e.stats.RowsSemiFiltered += semiDropped
	e.stats.RowsCodeFiltered += codeDropped

	return Chunk{
		Rows:           rowsShipped,
		Data:           ev.buf,
		BaseAddr:       ev.deliveryBase,
		ProducerCycles: producer,
		SourceRows:     srcRows,
	}, true
}

// rowQualifies evaluates the pushed-down conjunction against row r.
func (ev *Ephemeral) rowQualifies(r int) bool {
	for _, p := range ev.opts.preds {
		v, err := ev.tbl.Get(r, p.Col)
		if err != nil {
			panic(fmt.Sprintf("fabric: predicate read of validated column failed: %v", err))
		}
		if !p.Eval(v) {
			return false
		}
	}
	return true
}

// codesQualify tests row r's stored dictionary codes against every pushed
// code set — pure code-domain comparisons, no decode.
func (ev *Ephemeral) codesQualify(r int) bool {
	for _, f := range ev.opts.dictFilters {
		v, err := ev.tbl.Get(r, f.Col)
		if err != nil {
			panic(fmt.Sprintf("fabric: code-filter read of validated column failed: %v", err))
		}
		if !f.Codes.Contains(int(v.Int)) {
			return false
		}
	}
	return true
}

// semiQualifies tests row r's join key against the build-side Bloom filter.
func (ev *Ephemeral) semiQualifies(r int) bool {
	sj := ev.opts.semi
	v, err := ev.tbl.Get(r, sj.Col)
	if err != nil {
		panic(fmt.Sprintf("fabric: semi-join read of validated column failed: %v", err))
	}
	key, ok := sj.Key(ev.keyBuf[:0], v)
	ev.keyBuf = key[:0]
	if !ok {
		return false
	}
	return sj.Filter.MayContain(key)
}

// Materialize consumes the whole view and returns every packed row as a
// contiguous byte slice — the correctness-oriented API used by tests and by
// callers that want the column group as a plain buffer. It resets the view
// first.
func (ev *Ephemeral) Materialize() []byte {
	ev.Reset()
	var out []byte
	for {
		ch, ok := ev.Next()
		if !ok {
			return out
		}
		out = append(out, ch.Data...)
	}
}
