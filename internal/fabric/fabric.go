// Package fabric implements Relational Memory, the first instance of the
// Relational Fabric vision (ICDE 2023): a near-data transformation engine
// that sits between the processor and DRAM and converts row-oriented base
// data into arbitrary column groups on the fly. Nothing is materialized in
// main memory — the engine gathers exactly the requested bytes from each
// row, packs them densely into cache lines, and delivers them toward the
// CPU, so the processor sees the optimal layout "as if it already exists in
// memory" (§II).
//
// The engine performs the paper's four key hardware operations (§IV-A):
//
//  1. receive the access stride of the query and issue parallel memory
//     requests for the target data (GatherBatch against the banked DRAM
//     model, at burst rather than cache-line granularity);
//  2. assemble multiple entries into packed cache lines;
//  3. capture the CPU requests (the ephemeral view's delivery window);
//  4. transfer the reorganized data upon availability (chunked through the
//     bounded on-fabric buffer, "refilling it whenever it is full", §V).
//
// Beyond projection it implements the paper's §III-C and §IV-B extensions:
// MVCC visibility filtering via the two per-row timestamps in hardware, and
// selection/aggregation pushdown.
package fabric

import (
	"errors"
	"fmt"

	"rfabric/internal/dram"
	"rfabric/internal/obs"
)

// Config parameterizes the fabric hardware.
type Config struct {
	// BufferBytes is the on-fabric data memory that holds packed output
	// before the CPU consumes it. The paper's prototype has 2 MB (§V).
	BufferBytes int
	// ClockRatio is CPU cycles per fabric cycle. The prototype's
	// programmable logic runs at 100 MHz against 1.5 GHz cores → 15.
	ClockRatio int
	// MaxOutstanding bounds how many gather requests the engine keeps in
	// flight per round — its request-queue depth toward DRAM.
	MaxOutstanding int
	// RowsPerCycle is the datapath's row rate: how many row descriptors the
	// pipeline can retire per fabric cycle when rows are narrow.
	RowsPerCycle int
	// BeatBytes is the datapath width: how many gathered bytes the pipeline
	// moves per fabric cycle when rows are wide. Per chunk the datapath
	// costs max(rows/RowsPerCycle, gatheredBytes/BeatBytes) fabric cycles.
	BeatBytes int
	// TSCheckCycles is extra fabric cycles per row for the MVCC timestamp
	// comparison (§III-C). The default is 0: the comparators evaluate
	// combinationally inside the row's pipeline slot; a nonzero value
	// models a narrower comparator array that stalls the pipeline.
	TSCheckCycles int
	// PredicateCycles is extra fabric cycles per predicate per row for
	// selection pushdown (§IV-B); 0 means pipeline-parallel, like TSCheck.
	PredicateCycles int
	// AggregateCycles is fabric cycles per aggregated value for aggregation
	// pushdown (§IV-B).
	AggregateCycles int
	// DecodeCycles is fabric cycles per compressed-domain entry decoded when
	// a scan evaluates predicates directly over encoded data (one dictionary
	// entry or one RLE run value per unit). Charging it here keeps decode
	// work near memory, off the CPU's bytes-to-CPU bill.
	DecodeCycles int
	// RefillCycles is the fixed CPU-cycle cost of one buffer refill
	// round-trip (reconfigure the gather window, re-arm delivery). It is
	// what makes very small on-fabric buffers pay for their extra refills
	// (§V "refilling it whenever it is full").
	RefillCycles int
}

// DefaultConfig mirrors the paper's prototype proportions.
func DefaultConfig() Config {
	return Config{
		BufferBytes:     2 << 20,
		ClockRatio:      15,
		MaxOutstanding:  64,
		RowsPerCycle:    1,
		BeatBytes:       64,
		TSCheckCycles:   0,
		PredicateCycles: 0,
		AggregateCycles: 1,
		DecodeCycles:    1,
		RefillCycles:    1500,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BufferBytes <= 0 {
		return fmt.Errorf("fabric: BufferBytes must be positive, got %d", c.BufferBytes)
	}
	if c.ClockRatio <= 0 {
		return fmt.Errorf("fabric: ClockRatio must be positive, got %d", c.ClockRatio)
	}
	if c.MaxOutstanding <= 0 {
		return fmt.Errorf("fabric: MaxOutstanding must be positive, got %d", c.MaxOutstanding)
	}
	if c.RowsPerCycle <= 0 || c.BeatBytes <= 0 {
		return fmt.Errorf("fabric: datapath rates must be positive, got rows/cycle=%d beat=%d", c.RowsPerCycle, c.BeatBytes)
	}
	if c.TSCheckCycles < 0 || c.PredicateCycles < 0 || c.AggregateCycles < 0 || c.DecodeCycles < 0 || c.RefillCycles < 0 {
		return fmt.Errorf("fabric: negative cycle cost in %+v", c)
	}
	return nil
}

// Stats accumulates fabric-side counters across all ephemeral views of one
// engine.
type Stats struct {
	RowsScanned   uint64 // source row versions examined
	RowsShipped   uint64 // rows that passed visibility+selection and were packed
	BytesShipped  uint64 // packed bytes delivered toward the CPU
	LinesShipped  uint64 // packed cache lines delivered
	BytesGathered uint64 // bytes requested from DRAM (burst granularity)
	GatherCycles  uint64 // CPU cycles spent on DRAM-side gathers (critical paths)
	ComputeCycles uint64 // CPU-cycle cost of fabric datapath work
	Chunks        uint64 // buffer refills
	Aggregates    uint64 // aggregation-pushdown results produced

	RowsSemiFiltered uint64 // rows dropped by a Bloom semi-join pre-filter
	RowsCodeFiltered uint64 // rows dropped by a code-domain dictionary filter
	EntriesDecoded   uint64 // compressed-domain entries decoded fabric-side
}

// Engine is one fabric device attached to a DRAM module. Ephemeral views
// are configured against it. Not safe for concurrent use.
type Engine struct {
	cfg   Config
	mem   *dram.Module
	arena *dram.Arena
	stats Stats
	tl    *obs.Timeline // optional cycle sampler; nil-safe hooks
}

// New attaches a fabric engine to the DRAM module; delivery windows are
// allocated from arena.
func New(cfg Config, mem *dram.Module, arena *dram.Arena) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, errors.New("fabric: nil DRAM module")
	}
	if arena == nil {
		return nil, errors.New("fabric: nil arena")
	}
	return &Engine{cfg: cfg, mem: mem, arena: arena}, nil
}

// MustNew is New panicking on error, for fixtures.
func MustNew(cfg Config, mem *dram.Module, arena *dram.Arena) *Engine {
	e, err := New(cfg, mem, arena)
	if err != nil {
		panic(err)
	}
	return e
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Clone returns a fresh engine with the same configuration attached to mem,
// allocating delivery windows from arena. Parallel executors give each
// worker its own clone; an Engine is single-owner state.
func (e *Engine) Clone(mem *dram.Module, arena *dram.Arena) (*Engine, error) {
	return New(e.cfg, mem, arena)
}

// SetTimeline attaches (or, with nil, detaches) a cycle sampler. Clones do
// not inherit it (see dram.Module.SetTimeline).
func (e *Engine) SetTimeline(tl *obs.Timeline) { e.tl = tl }

// Stats returns a copy of the accumulated statistics.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// DRAM returns the module the engine gathers from.
func (e *Engine) DRAM() *dram.Module { return e.mem }

// computeCPUCycles converts fabric cycles to CPU cycles.
func (e *Engine) computeCPUCycles(fabricCycles uint64) uint64 {
	return fabricCycles * uint64(e.cfg.ClockRatio)
}

// ReplayChunk charges the delivery of one cached column-group chunk out of a
// persistent buffer and returns its producer cycles. A replay streams already
// packed bytes across the datapath — it pays the beat-rate shipping cost and
// the refill handshake but no DRAM gathers, no visibility or predicate
// checks, and no row-rate packing, which is exactly the warm/cold asymmetry
// the group cache exists to exploit. Counters move accordingly: shipped
// bytes/lines/rows and compute advance, gather- and scan-side counters do
// not.
func (e *Engine) ReplayChunk(rows, chunkBytes int) uint64 {
	beats := uint64((chunkBytes + e.cfg.BeatBytes - 1) / e.cfg.BeatBytes)
	compute := e.computeCPUCycles(beats)
	producer := compute + uint64(e.cfg.RefillCycles)
	e.tl.FabricChunk(compute, producer-compute)
	e.stats.RowsShipped += uint64(rows)
	e.stats.BytesShipped += uint64(chunkBytes)
	lineBytes := e.mem.LineBytes()
	e.stats.LinesShipped += uint64((chunkBytes + lineBytes - 1) / lineBytes)
	e.stats.ComputeCycles += compute
	e.stats.Chunks++
	return producer
}
