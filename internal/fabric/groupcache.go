package fabric

import (
	"fmt"
	"sync"

	"rfabric/internal/dram"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// Sequence-aware column-group cache. The paper's fabric tears down every
// ephemeral view when its query finishes, so a dashboard-style sequence of
// similar queries re-pays the full gather-and-pack cost each time. ReProVide
// makes the case for reusing the accelerator configuration the previous
// query left behind; this cache is that idea applied to Relational Memory:
// a packed column group, once produced, stays resident in a persistent
// delivery buffer and later queries over the same (table, geometry,
// snapshot, pushed predicates) replay its chunks out of the buffer instead
// of re-gathering from DRAM.
//
// Entries are reference-counted (a query holds its entry pinned while
// consuming it), evicted LRU by modeled bytes when the configured capacity
// is exceeded, and invalidated two ways: per-table epochs bumped by the DB
// façade on writes and DDL, and the table's own mutation counter
// (table.Version), which catches writers that hold the raw *Table handle
// and bypass the façade entirely.

// groupKey identifies one cached column group: the table (by identity), the
// geometry's column set in pack order, the MVCC snapshot the group was
// packed at, and any predicates that were pushed into the fabric (a pushed
// selection changes which rows the group contains).
type groupKey struct {
	tbl     *table.Table
	cols    string
	hasSnap bool
	snap    uint64
	preds   string
}

func makeGroupKey(tbl *table.Table, geom *geometry.Geometry, snap *uint64, preds expr.Conjunction) groupKey {
	k := groupKey{tbl: tbl, cols: fmt.Sprint(geom.Columns())}
	if snap != nil {
		k.hasSnap, k.snap = true, *snap
	}
	if len(preds) > 0 {
		k.preds = preds.Format(tbl.Schema())
	}
	return k
}

// CachedChunk is one buffer refill's worth of packed rows inside an entry's
// backing store, addressed relative to the entry's base.
type CachedChunk struct {
	Off        int // byte offset into the entry's data (line-aligned)
	Len        int // packed bytes (Rows * PackedWidth)
	Rows       int // packed rows delivered by this chunk
	SourceRows int // source row versions the cold run scanned for it
}

// GroupEntry is one resident column group: the packed bytes of every chunk
// the cold run delivered, pinned at a stable simulated address so replayed
// chunks fill the same hierarchy lines on every hit.
type GroupEntry struct {
	key      groupKey
	data     []byte
	chunks   []CachedChunk
	packed   int
	baseAddr int64
	bytes    int64
	epoch    uint64
	version  uint64 // table.Version at install time
	refs     int32  // guarded by the cache mutex
	lastUse  uint64
}

// Chunks returns the entry's chunk directory.
func (e *GroupEntry) Chunks() []CachedChunk { return e.chunks }

// Data returns the entry's packed backing store (read-only).
func (e *GroupEntry) Data() []byte { return e.data }

// BaseAddr returns the simulated address of Data[0].
func (e *GroupEntry) BaseAddr() int64 { return e.baseAddr }

// PackedWidth returns bytes per packed row.
func (e *GroupEntry) PackedWidth() int { return e.packed }

// Bytes returns the entry's modeled footprint (packing plus alignment).
func (e *GroupEntry) Bytes() int64 { return e.bytes }

// GroupCacheStats reports cache behaviour. Hits through Invalidations are
// monotonic counters; BytesCached and Entries are occupancy gauges.
type GroupCacheStats struct {
	Hits          uint64
	Misses        uint64
	Installs      uint64
	Evictions     uint64
	Invalidations uint64
	BytesCached   uint64
	Entries       uint64
}

// Delta returns the counters accumulated since prev; the occupancy gauges
// pass through at their current values.
func (s GroupCacheStats) Delta(prev GroupCacheStats) GroupCacheStats {
	return GroupCacheStats{
		Hits:          s.Hits - prev.Hits,
		Misses:        s.Misses - prev.Misses,
		Installs:      s.Installs - prev.Installs,
		Evictions:     s.Evictions - prev.Evictions,
		Invalidations: s.Invalidations - prev.Invalidations,
		BytesCached:   s.BytesCached,
		Entries:       s.Entries,
	}
}

// GroupCache is the sequence-aware cache of packed column groups. Safe for
// concurrent use: acquire, release, install, and invalidation all serialize
// on one mutex, and entry data is immutable after install, so a holder keeps
// reading a consistent group even if the entry is invalidated or evicted
// under it (the arena never reuses addresses).
type GroupCache struct {
	mu       sync.Mutex
	capacity int64
	arena    *dram.Arena
	entries  map[groupKey]*GroupEntry
	epochs   map[*table.Table]uint64
	bytes    int64
	tick     uint64
	stats    GroupCacheStats
}

// NewGroupCache builds a cache bounded by capacityBytes of modeled packed
// data, backing entries with addresses from arena.
func NewGroupCache(capacityBytes int64, arena *dram.Arena) *GroupCache {
	return &GroupCache{
		capacity: capacityBytes,
		arena:    arena,
		entries:  map[groupKey]*GroupEntry{},
		epochs:   map[*table.Table]uint64{},
	}
}

// Capacity returns the configured byte bound.
func (c *GroupCache) Capacity() int64 {
	if c == nil {
		return 0
	}
	return c.capacity
}

// Stats returns a snapshot of the counters and occupancy gauges. Nil-safe.
func (c *GroupCache) Stats() GroupCacheStats {
	if c == nil {
		return GroupCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.BytesCached = uint64(c.bytes)
	s.Entries = uint64(len(c.entries))
	return s
}

// stale reports whether e no longer reflects its table: either the façade
// bumped the table's epoch (write/DDL through the DB) or the table's own
// mutation counter moved (a raw-handle writer).
func (c *GroupCache) stale(e *GroupEntry) bool {
	return e.epoch != c.epochs[e.key.tbl] || e.version != e.key.tbl.Version()
}

// dropLocked removes an entry from the cache. Holders of acquired references
// keep their immutable data; only residency ends.
func (c *GroupCache) dropLocked(e *GroupEntry) {
	delete(c.entries, e.key)
	c.bytes -= e.bytes
}

// Acquire looks up the group for (tbl, geom, snap, preds) and pins it. A
// stale entry is dropped and reported as a miss. The caller must Release the
// entry exactly once when done consuming it.
func (c *GroupCache) Acquire(tbl *table.Table, geom *geometry.Geometry, snap *uint64, preds expr.Conjunction) (*GroupEntry, bool) {
	if c == nil {
		return nil, false
	}
	key := makeGroupKey(tbl, geom, snap, preds)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok && c.stale(e) {
		c.dropLocked(e)
		c.stats.Invalidations++
		ok = false
	}
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	e.refs++
	c.tick++
	e.lastUse = c.tick
	return e, true
}

// Release unpins an acquired entry.
func (c *GroupCache) Release(e *GroupEntry) {
	if c == nil || e == nil {
		return
	}
	c.mu.Lock()
	if e.refs > 0 {
		e.refs--
	}
	c.mu.Unlock()
}

// GroupInfo is the pricing view of a resident group: what a warm replay
// would deliver, without acquiring or perturbing the hit/miss counters.
type GroupInfo struct {
	Bytes  int64 // packed bytes to stream out of the buffer
	Chunks int   // refill handshakes a replay pays
	Rows   int   // packed rows the group delivers
}

// Peek reports whether the group is resident and fresh — the optimizer's
// warm-vs-cold probe. It does not count as a hit or a miss and does not pin.
func (c *GroupCache) Peek(tbl *table.Table, geom *geometry.Geometry, snap *uint64, preds expr.Conjunction) (GroupInfo, bool) {
	if c == nil {
		return GroupInfo{}, false
	}
	key := makeGroupKey(tbl, geom, snap, preds)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || c.stale(e) {
		return GroupInfo{}, false
	}
	info := GroupInfo{Chunks: len(e.chunks)}
	for _, ch := range e.chunks {
		info.Bytes += int64(ch.Len)
		info.Rows += ch.Rows
	}
	return info, true
}

// Invalidate bumps tbl's epoch and drops every resident group over it. The
// DB façade calls this on writes; DDL goes through InvalidateAll.
func (c *GroupCache) Invalidate(tbl *table.Table) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochs[tbl]++
	for _, e := range c.entries {
		if e.key.tbl == tbl {
			c.dropLocked(e)
			c.stats.Invalidations++
		}
	}
}

// InvalidateAll drops every resident group (catalog-wide DDL).
func (c *GroupCache) InvalidateAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		c.dropLocked(e)
		c.stats.Invalidations++
	}
}

// evictLocked makes room for need bytes by dropping least-recently-used
// unpinned entries. Returns false when pinned entries keep the cache over
// capacity.
func (c *GroupCache) evictLocked(need int64) bool {
	for c.bytes+need > c.capacity {
		var victim *GroupEntry
		for _, e := range c.entries {
			if e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return false
		}
		c.dropLocked(victim)
		c.stats.Evictions++
	}
	return true
}

// GroupRecorder captures a cold run's chunks as they are delivered and
// installs them as one entry when the scan completes. The key and table
// version are pinned at creation, so a group recorded over a table that
// mutates before install simply fails the freshness check later.
type GroupRecorder struct {
	cache   *GroupCache
	key     groupKey
	version uint64
	packed  int
	align   int
	data    []byte
	chunks  []CachedChunk
	done    bool
}

// NewRecorder starts capturing one group. align is the cache-line size the
// chunk offsets are padded to, so every replayed chunk starts line-aligned
// exactly like the cold delivery window does.
func (c *GroupCache) NewRecorder(tbl *table.Table, geom *geometry.Geometry, snap *uint64, preds expr.Conjunction, packed, align int) *GroupRecorder {
	if c == nil {
		return nil
	}
	if align <= 0 {
		align = 64
	}
	return &GroupRecorder{
		cache:   c,
		key:     makeGroupKey(tbl, geom, snap, preds),
		version: tbl.Version(),
		packed:  packed,
		align:   align,
	}
}

// Add copies one delivered chunk into the recording. Nil-safe.
func (r *GroupRecorder) Add(data []byte, rows, sourceRows int) {
	if r == nil || r.done {
		return
	}
	if pad := len(r.data) % r.align; pad != 0 {
		r.data = append(r.data, make([]byte, r.align-pad)...)
	}
	off := len(r.data)
	r.data = append(r.data, data...)
	r.chunks = append(r.chunks, CachedChunk{Off: off, Len: len(data), Rows: rows, SourceRows: sourceRows})
}

// Install publishes the recording as a resident entry, evicting LRU unpinned
// entries to fit. Groups larger than the whole cache are not installed.
// Idempotent: only the first call publishes.
func (r *GroupRecorder) Install() {
	if r == nil || r.done {
		return
	}
	r.done = true
	c := r.cache
	size := int64(len(r.data))
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.capacity {
		return
	}
	if old, ok := c.entries[r.key]; ok {
		// A concurrent cold run over the same group raced us here; replace.
		c.dropLocked(old)
	}
	if !c.evictLocked(size) {
		return
	}
	e := &GroupEntry{
		key:      r.key,
		data:     r.data,
		chunks:   r.chunks,
		packed:   r.packed,
		baseAddr: c.arena.Alloc(size),
		bytes:    size,
		epoch:    c.epochs[r.key.tbl],
		version:  r.version,
	}
	c.tick++
	e.lastUse = c.tick
	c.entries[r.key] = e
	c.bytes += size
	c.stats.Installs++
}
