package fabric

import "rfabric/internal/obs"

// Delta returns the counters accumulated since prev. All Stats fields are
// monotonically increasing, so a component-wise subtraction is exact.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		RowsScanned:   s.RowsScanned - prev.RowsScanned,
		RowsShipped:   s.RowsShipped - prev.RowsShipped,
		BytesShipped:  s.BytesShipped - prev.BytesShipped,
		LinesShipped:  s.LinesShipped - prev.LinesShipped,
		BytesGathered: s.BytesGathered - prev.BytesGathered,
		GatherCycles:  s.GatherCycles - prev.GatherCycles,
		ComputeCycles: s.ComputeCycles - prev.ComputeCycles,
		Chunks:        s.Chunks - prev.Chunks,
		Aggregates:    s.Aggregates - prev.Aggregates,

		RowsSemiFiltered: s.RowsSemiFiltered - prev.RowsSemiFiltered,
		RowsCodeFiltered: s.RowsCodeFiltered - prev.RowsCodeFiltered,
		EntriesDecoded:   s.EntriesDecoded - prev.EntriesDecoded,
	}
}

// Publish adds this stats snapshot (typically a Delta) into the registry as
// rfabric_fabric_* counters.
func (s Stats) Publish(reg *obs.Registry, labels obs.Labels) {
	if reg == nil {
		return
	}
	reg.Counter("rfabric_fabric_rows_scanned_total", labels).Add(s.RowsScanned)
	reg.Counter("rfabric_fabric_rows_shipped_total", labels).Add(s.RowsShipped)
	reg.Counter("rfabric_fabric_bytes_shipped_total", labels).Add(s.BytesShipped)
	reg.Counter("rfabric_fabric_lines_shipped_total", labels).Add(s.LinesShipped)
	reg.Counter("rfabric_fabric_bytes_gathered_total", labels).Add(s.BytesGathered)
	reg.Counter("rfabric_fabric_gather_cycles_total", labels).Add(s.GatherCycles)
	reg.Counter("rfabric_fabric_compute_cycles_total", labels).Add(s.ComputeCycles)
	reg.Counter("rfabric_fabric_chunks_total", labels).Add(s.Chunks)
	reg.Counter("rfabric_fabric_aggregates_total", labels).Add(s.Aggregates)
	reg.Counter("rfabric_fabric_rows_semi_filtered_total", labels).Add(s.RowsSemiFiltered)
	reg.Counter("rfabric_fabric_rows_code_filtered_total", labels).Add(s.RowsCodeFiltered)
	reg.Counter("rfabric_fabric_entries_decoded_total", labels).Add(s.EntriesDecoded)
}

// Publish adds this group-cache snapshot (typically a Delta) into the
// registry: rfabric_groupcache_* counters for the cache's traffic plus
// occupancy gauges for resident bytes and entries.
func (s GroupCacheStats) Publish(reg *obs.Registry, labels obs.Labels) {
	if reg == nil {
		return
	}
	reg.Counter("rfabric_groupcache_hits_total", labels).Add(s.Hits)
	reg.Counter("rfabric_groupcache_misses_total", labels).Add(s.Misses)
	reg.Counter("rfabric_groupcache_installs_total", labels).Add(s.Installs)
	reg.Counter("rfabric_groupcache_evictions_total", labels).Add(s.Evictions)
	reg.Counter("rfabric_groupcache_invalidations_total", labels).Add(s.Invalidations)
	reg.Gauge("rfabric_groupcache_bytes", labels).Set(float64(s.BytesCached))
	reg.Gauge("rfabric_groupcache_entries", labels).Set(float64(s.Entries))
}
