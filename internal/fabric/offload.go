package fabric

import (
	"fmt"
	"math"

	"rfabric/internal/compress"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// Offload is a first-class operator program a Source can push into the
// fabric: selection (carried by the view's options), projection (the view's
// geometry), then grouped or ungrouped aggregation over the packed rows —
// the Farview-style generalization of the paper's §IV-B pushdown. Only the
// reduced result ships toward the CPU.
type Offload struct {
	// GroupBy lists schema columns to group on; empty means one global fold.
	GroupBy []int
	// Aggs is one folded value per output, in order.
	Aggs []expr.AggSpec
}

// Grouped reports whether the program produces per-group rows.
func (o *Offload) Grouped() bool { return o != nil && len(o.GroupBy) > 0 }

// Describe names the program for plan/span annotations.
func (o *Offload) Describe() string {
	if o.Grouped() {
		return "group-agg"
	}
	return "agg"
}

// DictFilter is a code-domain predicate over a dictionary-encoded column:
// rows whose stored code is outside Codes are dropped without decoding.
// Entries is how many dictionary entries were decoded to translate the
// value-domain predicate (charged fabric-side at DecodeCycles each).
type DictFilter struct {
	Col     int
	Codes   *compress.CodeSet
	Entries int
}

// AggState is the fabric-side fold state for one aggregate of one group. It
// mirrors the CPU consumer's accumulator field-for-field — same float64
// adds in the same row order — so an offloaded group-by reproduces the
// CPU-side result bit-for-bit.
type AggState struct {
	Kind  expr.AggKind
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	Any   bool
}

// Add folds one value, mirroring the consumer accumulator exactly.
func (a *AggState) Add(x float64) {
	a.Count++
	a.Sum += x
	if !a.Any || x < a.Min {
		a.Min = x
	}
	if !a.Any || x > a.Max {
		a.Max = x
	}
	a.Any = true
}

// OffloadGroup is one group's reduced output.
type OffloadGroup struct {
	// Key holds the decoded group-by values, in GroupBy order. Char bytes
	// are copies, safe to retain after the view's buffer rotates.
	Key []table.Value
	// Rows is how many qualifying rows fell into the group.
	Rows int64
	// Accs holds one fold state per AggSpec, in order.
	Accs []AggState
}

// OffloadResult is the outcome of running an Offload program on a view.
type OffloadResult struct {
	// Values holds the ungrouped results (one per spec); nil when grouped.
	Values []table.Value
	// Groups holds per-group fold states in first-seen order; nil when
	// ungrouped.
	Groups []OffloadGroup
	// RowsScanned and RowsQualified describe the scan behind the result.
	RowsScanned   int
	RowsQualified int
	// ProducerCycles is the full CPU-cycle cost of the fabric-side program;
	// only the reduced result crosses to the CPU.
	ProducerCycles uint64
	// ResultBytes is the size of the shipped result — the entire
	// bytes-to-CPU bill of the offloaded scan.
	ResultBytes int
}

// offloadKey appends v's canonical group-key encoding, byte-identical to the
// CPU consumer's so group identity cannot diverge between the two paths.
func offloadKey(dst []byte, v table.Value) []byte {
	switch v.Type {
	case geometry.Float64:
		bits := math.Float64bits(v.Float)
		for i := 0; i < 8; i++ {
			dst = append(dst, byte(bits>>(8*uint(i))))
		}
	case geometry.Char:
		b := v.Bytes
		end := len(b)
		for end > 0 && b[end-1] == 0 {
			end--
		}
		dst = append(dst, b[:end]...)
		dst = append(dst, 0xff)
	default:
		u := uint64(v.Int)
		for i := 0; i < 8; i++ {
			dst = append(dst, byte(u>>(8*uint(i))))
		}
	}
	return dst
}

// RunOffload executes the program over the view's selection and snapshot.
// The base data never crosses toward the CPU: the fabric scans, filters,
// groups, and folds chunk-at-a-time, and ships only the reduced result.
func (ev *Ephemeral) RunOffload(off *Offload) (*OffloadResult, error) {
	if off == nil || len(off.Aggs) == 0 {
		return nil, fmt.Errorf("fabric: offload program has no aggregates")
	}
	if !off.Grouped() {
		ar, err := ev.Aggregate(off.Aggs)
		if err != nil {
			return nil, err
		}
		return &OffloadResult{
			Values:         ar.Values,
			RowsScanned:    ar.RowsScanned,
			RowsQualified:  ar.RowsQualified,
			ProducerCycles: ar.ProducerCycles,
			ResultBytes:    len(ar.Values) * 8,
		}, nil
	}

	sch := ev.tbl.Schema()
	type colPlan struct {
		col    int
		offset int
		width  int
	}
	keyPlans := make([]colPlan, len(off.GroupBy))
	for i, c := range off.GroupBy {
		if !ev.geom.Contains(c) {
			return nil, fmt.Errorf("fabric: group-by column %q not in configured geometry %s",
				sch.Column(c).Name, ev.geom)
		}
		pos := ev.geom.Position(c)
		keyPlans[i] = colPlan{col: c, offset: ev.geom.PackedOffset(pos), width: sch.Column(c).Width}
	}
	aggPlans := make([]colPlan, len(off.Aggs))
	for i, sp := range off.Aggs {
		if sp.Kind == expr.Count {
			aggPlans[i] = colPlan{col: -1}
			continue
		}
		if !ev.geom.Contains(sp.Col) {
			return nil, fmt.Errorf("fabric: aggregate over column %q not in configured geometry %s",
				sch.Column(sp.Col).Name, ev.geom)
		}
		pos := ev.geom.Position(sp.Col)
		aggPlans[i] = colPlan{col: sp.Col, offset: ev.geom.PackedOffset(pos), width: sch.Column(sp.Col).Width}
	}

	e := ev.eng
	ev.Reset()
	var producer uint64
	scanned, qualified := 0, 0
	groups := make(map[string]*OffloadGroup)
	var order []*OffloadGroup
	var keyBuf []byte
	keyBytes := 0

	for ev.cursor < ev.tbl.NumRows() {
		ch, ok := ev.Next()
		if !ok {
			break
		}
		// Undo the shipping accounting Next performed: nothing leaves the
		// fabric for an offloaded aggregation.
		e.stats.BytesShipped -= uint64(len(ch.Data))
		e.stats.LinesShipped -= uint64((len(ch.Data) + e.mem.LineBytes() - 1) / e.mem.LineBytes())

		scanned += ch.SourceRows
		qualified += ch.Rows

		for r := 0; r < ch.Rows; r++ {
			row := ch.Data[r*ev.packed : (r+1)*ev.packed]
			keyBuf = keyBuf[:0]
			var keyVals []table.Value
			for _, kp := range keyPlans {
				v := table.DecodeColumn(sch.Column(kp.col), row[kp.offset:kp.offset+kp.width])
				keyVals = append(keyVals, v)
				keyBuf = offloadKey(keyBuf, v)
			}
			g, ok := groups[string(keyBuf)]
			if !ok {
				g = &OffloadGroup{Key: keyVals, Accs: make([]AggState, len(off.Aggs))}
				for i := range g.Accs {
					g.Accs[i].Kind = off.Aggs[i].Kind
				}
				groups[string(keyBuf)] = g
				order = append(order, g)
				keyBytes += len(keyBuf)
			}
			g.Rows++
			for i := range aggPlans {
				st := &g.Accs[i]
				if st.Kind == expr.Count {
					st.Count++
					continue
				}
				v := table.DecodeColumn(sch.Column(aggPlans[i].col), row[aggPlans[i].offset:aggPlans[i].offset+aggPlans[i].width])
				x := v.Float
				if v.Type != geometry.Float64 {
					x = float64(v.Int)
				}
				st.Add(x)
			}
		}

		// The grouping datapath hashes each qualifying row's key and routes
		// it to its fold lane — unlike the global fold, this serializes at
		// AggregateCycles per row on the fabric clock.
		groupCPU := e.computeCPUCycles(uint64(ch.Rows) * uint64(e.cfg.AggregateCycles))
		e.stats.ComputeCycles += groupCPU
		producer += ch.ProducerCycles + groupCPU
	}

	// Result assembly: one fold per (group, spec) shipped at the end.
	finalFold := e.computeCPUCycles(uint64(len(order)*len(off.Aggs)) * uint64(e.cfg.AggregateCycles))
	e.stats.ComputeCycles += finalFold
	producer += finalFold
	e.stats.Aggregates += uint64(len(order) * len(off.Aggs))

	out := &OffloadResult{
		Groups:         make([]OffloadGroup, len(order)),
		RowsScanned:    scanned,
		RowsQualified:  qualified,
		ProducerCycles: producer,
		ResultBytes:    keyBytes + len(order)*len(off.Aggs)*8,
	}
	for i, g := range order {
		out.Groups[i] = *g
	}
	return out, nil
}
