package fabric

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"rfabric/internal/compress"
	"rfabric/internal/dram"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

func i64Key(dst []byte, v table.Value) ([]byte, bool) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v.Int))
	return append(dst, b[:]...), true
}

func TestBloomNoFalseNegatives(t *testing.T) {
	bl := NewBloom(1000)
	key := func(i int) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(i)*2654435761)
		return b[:]
	}
	for i := 0; i < 1000; i++ {
		bl.Add(key(i))
	}
	if bl.Keys() != 1000 {
		t.Fatalf("Keys = %d, want 1000", bl.Keys())
	}
	for i := 0; i < 1000; i++ {
		if !bl.MayContain(key(i)) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	// Disjoint keys should mostly miss: ~10 bits/key and 4 probes lands the
	// false-positive rate around 1-2%; 10% is a generous failure threshold.
	fp := 0
	for i := 1000; i < 11000; i++ {
		if bl.MayContain(key(i)) {
			fp++
		}
	}
	if fp > 1000 {
		t.Errorf("false-positive rate %d/10000 — filter is not filtering", fp)
	}
}

func TestBloomEmptyRejectsEverything(t *testing.T) {
	bl := NewBloom(0)
	if bl.MayContain([]byte("anything")) {
		t.Error("empty filter claimed containment")
	}
	if bl.Keys() != 0 {
		t.Errorf("Keys = %d", bl.Keys())
	}
}

func TestRunOffloadUngroupedMatchesAggregate(t *testing.T) {
	preds := expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.I32(70)}}
	specs := []expr.AggSpec{
		{Kind: expr.Count},
		{Kind: expr.Sum, Col: 1},
		{Kind: expr.Min, Col: 3},
		{Kind: expr.Max, Col: 3},
	}
	geomOf := func(f *fixture) *geometry.Geometry {
		return geometry.MustGeometry(f.tbl.Schema(), 1, 3)
	}

	f1 := newFixture(t, 400, false)
	ev1, err := f1.eng.Configure(f1.tbl, geomOf(f1), WithSelection(preds))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ev1.Aggregate(specs)
	if err != nil {
		t.Fatal(err)
	}

	f2 := newFixture(t, 400, false)
	ev2, err := f2.eng.Configure(f2.tbl, geomOf(f2), WithSelection(preds))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev2.RunOffload(&Offload{Aggs: specs})
	if err != nil {
		t.Fatal(err)
	}
	if got.Groups != nil {
		t.Error("ungrouped offload produced groups")
	}
	for i := range specs {
		if !got.Values[i].Equal(want.Values[i]) {
			t.Errorf("value %d = %s, want %s", i, got.Values[i], want.Values[i])
		}
	}
	if got.RowsScanned != want.RowsScanned || got.RowsQualified != want.RowsQualified {
		t.Errorf("scan counts %d/%d, want %d/%d",
			got.RowsScanned, got.RowsQualified, want.RowsScanned, want.RowsQualified)
	}
	if got.ProducerCycles != want.ProducerCycles {
		t.Errorf("ProducerCycles = %d, want %d", got.ProducerCycles, want.ProducerCycles)
	}
	if got.ResultBytes != len(specs)*8 {
		t.Errorf("ResultBytes = %d, want %d", got.ResultBytes, len(specs)*8)
	}
	if shipped := f2.eng.Stats().BytesShipped; shipped != 0 {
		t.Errorf("offloaded aggregation shipped %d bytes", shipped)
	}
}

func TestRunOffloadGroupedMatchesSoftware(t *testing.T) {
	f := newFixture(t, 500, false)
	geom := geometry.MustGeometry(f.tbl.Schema(), 2, 1, 3)
	preds := expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.I32(80)}}
	ev, err := f.eng.Configure(f.tbl, geom, WithSelection(preds))
	if err != nil {
		t.Fatal(err)
	}
	off := &Offload{
		GroupBy: []int{2},
		Aggs: []expr.AggSpec{
			{Kind: expr.Count},
			{Kind: expr.Sum, Col: 1},
			{Kind: expr.Min, Col: 3},
			{Kind: expr.Max, Col: 3},
		},
	}
	got, err := ev.RunOffload(off)
	if err != nil {
		t.Fatal(err)
	}

	// Software reference in the same first-seen order with the same float64
	// fold sequence.
	type ref struct {
		key  string
		rows int64
		acc  [4]AggState
	}
	refs := map[string]*ref{}
	var order []*ref
	scanned, qualified := 0, 0
	for r := 0; r < f.tbl.NumRows(); r++ {
		scanned++
		b, _ := f.tbl.Get(r, 1)
		if !(b.Int < 80) {
			continue
		}
		qualified++
		c, _ := f.tbl.Get(r, 2)
		d, _ := f.tbl.Get(r, 3)
		k := c.String()
		g, ok := refs[k]
		if !ok {
			g = &ref{key: k}
			refs[k] = g
			order = append(order, g)
		}
		g.rows++
		g.acc[0].Count++
		g.acc[1].Add(float64(b.Int))
		g.acc[2].Add(d.Float)
		g.acc[3].Add(d.Float)
	}

	if got.RowsScanned != scanned || got.RowsQualified != qualified {
		t.Fatalf("scan counts %d/%d, want %d/%d", got.RowsScanned, got.RowsQualified, scanned, qualified)
	}
	if len(got.Groups) != len(order) {
		t.Fatalf("%d groups, want %d", len(got.Groups), len(order))
	}
	for i, g := range got.Groups {
		want := order[i]
		if g.Key[0].String() != want.key {
			t.Fatalf("group %d key %q, want %q (first-seen order broken)", i, g.Key[0], want.key)
		}
		if g.Rows != want.rows {
			t.Errorf("group %q rows %d, want %d", want.key, g.Rows, want.rows)
		}
		if g.Accs[0].Count != want.acc[0].Count {
			t.Errorf("group %q count %d, want %d", want.key, g.Accs[0].Count, want.acc[0].Count)
		}
		if g.Accs[1].Sum != want.acc[1].Sum {
			t.Errorf("group %q sum %v, want %v", want.key, g.Accs[1].Sum, want.acc[1].Sum)
		}
		if g.Accs[2].Min != want.acc[2].Min || g.Accs[3].Max != want.acc[3].Max {
			t.Errorf("group %q min/max %v/%v, want %v/%v",
				want.key, g.Accs[2].Min, g.Accs[3].Max, want.acc[2].Min, want.acc[3].Max)
		}
	}
	// Reduced results only: nothing shipped, and the bytes-to-CPU bill is the
	// key bytes plus 8 per (group, agg).
	if shipped := f.eng.Stats().BytesShipped; shipped != 0 {
		t.Errorf("grouped offload shipped %d bytes", shipped)
	}
	if got.ResultBytes <= 0 || got.ResultBytes >= qualified*geom.PackedWidth() {
		t.Errorf("ResultBytes = %d — expected a reduction below %d shipped-row bytes",
			got.ResultBytes, qualified*geom.PackedWidth())
	}
	if got.ProducerCycles == 0 {
		t.Error("grouped offload charged zero producer cycles")
	}
	if aggs := f.eng.Stats().Aggregates; aggs != uint64(len(order)*len(off.Aggs)) {
		t.Errorf("Aggregates = %d, want %d", aggs, len(order)*len(off.Aggs))
	}
}

func TestRunOffloadValidation(t *testing.T) {
	f := newFixture(t, 10, false)
	ev, err := f.eng.Configure(f.tbl, geometry.MustGeometry(f.tbl.Schema(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.RunOffload(nil); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := ev.RunOffload(&Offload{GroupBy: []int{1}}); err == nil {
		t.Error("program with no aggregates accepted")
	}
	if _, err := ev.RunOffload(&Offload{GroupBy: []int{2}, Aggs: []expr.AggSpec{{Kind: expr.Count}}}); err == nil {
		t.Error("group-by column outside geometry accepted")
	}
	if _, err := ev.RunOffload(&Offload{GroupBy: []int{1}, Aggs: []expr.AggSpec{{Kind: expr.Sum, Col: 3}}}); err == nil {
		t.Error("aggregate column outside geometry accepted")
	}
}

func TestSemiJoinPrefiltersProbeRows(t *testing.T) {
	f := newFixture(t, 256, false)
	// Build side: only even keys below 100 join.
	bl := NewBloom(50)
	var buf []byte
	for k := 0; k < 100; k += 2 {
		buf, _ = i64Key(buf[:0], table.I64(int64(k)))
		bl.Add(buf)
	}
	sj := &SemiJoin{Col: 0, Key: i64Key, Filter: bl}
	ev, err := f.eng.Configure(f.tbl, geometry.MustGeometry(f.tbl.Schema(), 0, 3), WithSemiJoin(sj))
	if err != nil {
		t.Fatal(err)
	}
	ev.Materialize()
	st := f.eng.Stats()
	// No false negatives: at least the 50 genuinely matching rows survive
	// (col 0 is the row number), and the drop counter reconciles.
	if st.RowsShipped < 50 {
		t.Errorf("shipped %d rows, want >= 50 (false negative)", st.RowsShipped)
	}
	if st.RowsShipped+st.RowsSemiFiltered != st.RowsScanned {
		t.Errorf("shipped %d + semi-filtered %d != scanned %d",
			st.RowsShipped, st.RowsSemiFiltered, st.RowsScanned)
	}
	if st.RowsSemiFiltered == 0 {
		t.Error("filter dropped nothing — 206 rows cannot all be false positives")
	}
}

func TestSemiJoinKeyRejectionDropsRow(t *testing.T) {
	f := newFixture(t, 16, false)
	bl := NewBloom(4)
	sj := &SemiJoin{
		Col:    0,
		Key:    func(dst []byte, v table.Value) ([]byte, bool) { return dst, false },
		Filter: bl,
	}
	ev, err := f.eng.Configure(f.tbl, geometry.MustGeometry(f.tbl.Schema(), 0), WithSemiJoin(sj))
	if err != nil {
		t.Fatal(err)
	}
	ev.Materialize()
	if st := f.eng.Stats(); st.RowsShipped != 0 || st.RowsSemiFiltered != 16 {
		t.Errorf("shipped/filtered = %d/%d, want 0/16", st.RowsShipped, st.RowsSemiFiltered)
	}
}

func TestConfigureFilterValidation(t *testing.T) {
	f := newFixture(t, 8, false)
	geom := geometry.MustGeometry(f.tbl.Schema(), 0)
	bl := NewBloom(1)
	if _, err := f.eng.Configure(f.tbl, geom,
		WithSemiJoin(&SemiJoin{Col: 99, Key: i64Key, Filter: bl})); err == nil {
		t.Error("out-of-range semi-join column accepted")
	}
	if _, err := f.eng.Configure(f.tbl, geom,
		WithSemiJoin(&SemiJoin{Col: 0, Filter: bl})); err == nil {
		t.Error("semi-join without key encoder accepted")
	}
	if _, err := f.eng.Configure(f.tbl, geom,
		WithSemiJoin(&SemiJoin{Col: 0, Key: i64Key})); err == nil {
		t.Error("semi-join without filter accepted")
	}
	if _, err := f.eng.Configure(f.tbl, geom,
		WithDictFilter(DictFilter{Col: -1, Codes: &compress.CodeSet{}})); err == nil {
		t.Error("out-of-range dict-filter column accepted")
	}
	if _, err := f.eng.Configure(f.tbl, geom,
		WithDictFilter(DictFilter{Col: 0})); err == nil {
		t.Error("dict filter without code set accepted")
	}
	// WithSemiJoin(nil) is a no-op, not an error.
	if _, err := f.eng.Configure(f.tbl, geom, WithSemiJoin(nil)); err != nil {
		t.Errorf("nil semi-join rejected: %v", err)
	}
}

// TestDictFilterScansWithoutDecompress is the compression-aware scan: the
// predicate is translated once into the code domain (MatchCodes), the fabric
// filters rows by their stored code without reconstructing a single value,
// and the dictionary-translation decode cost lands on the fabric's meter.
func TestDictFilterScansWithoutDecompress(t *testing.T) {
	mem := dram.MustNew(dram.DefaultConfig())
	arena := dram.MustArena(0, 64)
	eng := MustNew(DefaultConfig(), mem, arena)

	sch := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "mode", Type: geometry.Char, Width: 10},
		geometry.Column{Name: "qty", Type: geometry.Int32, Width: 4},
	)
	const rows = 600
	src := table.MustNew("t", sch, table.WithCapacity(rows),
		table.WithBaseAddr(arena.Alloc(int64(rows*sch.RowBytes()))))
	modes := []string{"AIR", "RAIL", "SHIP", "TRUCK"}
	rng := rand.New(rand.NewSource(7))
	for r := 0; r < rows; r++ {
		src.MustAppend(0, table.I64(int64(r)), table.Str(modes[rng.Intn(len(modes))]),
			table.I32(rng.Int31n(50)))
	}
	enc, err := compress.EncodeTableDict(src, []int{1}, arena.Alloc(int64(rows*sch.RowBytes())))
	if err != nil {
		t.Fatal(err)
	}
	codes, entries, err := enc.MatchCodes(1, func(v table.Value) bool {
		return v.String() == "SHIP"
	})
	if err != nil {
		t.Fatal(err)
	}
	if entries != len(modes) {
		t.Fatalf("decoded %d dictionary entries, want %d", entries, len(modes))
	}

	ev, err := eng.Configure(enc.Table, geometry.MustGeometry(enc.Table.Schema(), 0, 2),
		WithDictFilter(DictFilter{Col: 1, Codes: codes, Entries: entries}))
	if err != nil {
		t.Fatal(err)
	}
	ev.Materialize()

	want := 0
	for r := 0; r < rows; r++ {
		if v, _ := src.Get(r, 1); v.String() == "SHIP" {
			want++
		}
	}
	st := eng.Stats()
	if st.RowsShipped != uint64(want) {
		t.Errorf("shipped %d rows, want %d (code-domain filter is not exact)", st.RowsShipped, want)
	}
	if st.RowsCodeFiltered != uint64(rows-want) {
		t.Errorf("RowsCodeFiltered = %d, want %d", st.RowsCodeFiltered, rows-want)
	}
	if st.EntriesDecoded != uint64(entries) {
		t.Errorf("EntriesDecoded = %d, want %d — translation cost lost", st.EntriesDecoded, entries)
	}
	if st.ComputeCycles == 0 {
		t.Error("no fabric compute charged")
	}
}

// TestDictFilterTranslationChargeIsOneTime pins where the dictionary decode
// lands: on the first chunk's fabric compute, exactly once per Configure, so
// span reconciliation sees the decode inside the fabric's producer cycles.
func TestDictFilterTranslationChargeIsOneTime(t *testing.T) {
	f := newFixture(t, 64, false)
	set := &compress.CodeSet{}
	for c := 0; c < 100; c++ {
		set.Add(c)
	}
	const entries = 100
	ev, err := f.eng.Configure(f.tbl, geometry.MustGeometry(f.tbl.Schema(), 1),
		WithDictFilter(DictFilter{Col: 1, Codes: set, Entries: entries}))
	if err != nil {
		t.Fatal(err)
	}
	before := f.eng.Stats()
	ev.Materialize()
	mid := f.eng.Stats()
	if got := mid.EntriesDecoded - before.EntriesDecoded; got != entries {
		t.Fatalf("first pass decoded %d entries, want %d", got, entries)
	}
	ev.Materialize()
	if after := f.eng.Stats(); after.EntriesDecoded != mid.EntriesDecoded {
		t.Errorf("re-materialize decoded %d more entries — translation should be one-time",
			after.EntriesDecoded-mid.EntriesDecoded)
	}
}

func TestOffloadDescribe(t *testing.T) {
	cases := []struct {
		off  *Offload
		want string
	}{
		{&Offload{Aggs: []expr.AggSpec{{Kind: expr.Count}}}, "agg"},
		{&Offload{GroupBy: []int{0}, Aggs: []expr.AggSpec{{Kind: expr.Count}}}, "group-agg"},
	}
	for _, c := range cases {
		if got := c.off.Describe(); got != c.want {
			t.Errorf("Describe() = %q, want %q", got, c.want)
		}
	}
}

func TestStatsDeltaCoversFilterCounters(t *testing.T) {
	a := Stats{RowsSemiFiltered: 10, RowsCodeFiltered: 20, EntriesDecoded: 30}
	b := Stats{RowsSemiFiltered: 4, RowsCodeFiltered: 5, EntriesDecoded: 6}
	d := a.Delta(b)
	if d.RowsSemiFiltered != 6 || d.RowsCodeFiltered != 15 || d.EntriesDecoded != 24 {
		t.Errorf("Delta = %+v", d)
	}
}
