package fabric

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"rfabric/internal/dram"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

type fixture struct {
	eng *Engine
	tbl *table.Table
}

func newFixture(t *testing.T, rows int, mvcc bool, cfg ...Config) *fixture {
	t.Helper()
	c := DefaultConfig()
	if len(cfg) > 0 {
		c = cfg[0]
	}
	mem := dram.MustNew(dram.DefaultConfig())
	arena := dram.MustArena(0, 64)
	eng := MustNew(c, mem, arena)

	sch := geometry.MustSchema(
		geometry.Column{Name: "a", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "b", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "c", Type: geometry.Char, Width: 5},
		geometry.Column{Name: "d", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "e", Type: geometry.Int32, Width: 4},
	)
	var opts []table.Option
	if mvcc {
		opts = append(opts, table.WithMVCC())
	}
	stride := sch.RowBytes()
	if mvcc {
		stride += table.MVCCHeaderBytes
	}
	opts = append(opts, table.WithBaseAddr(arena.Alloc(int64(rows*stride))), table.WithCapacity(rows))
	tbl := table.MustNew("t", sch, opts...)
	rng := rand.New(rand.NewSource(9))
	for r := 0; r < rows; r++ {
		tbl.MustAppend(1,
			table.I64(int64(r)),
			table.I32(int32(rng.Intn(100))),
			table.Str(string(rune('a'+r%26))),
			table.F64(float64(r)*0.5),
			table.I32(int32(rng.Intn(100))),
		)
	}
	return &fixture{eng: eng, tbl: tbl}
}

// referencePack builds the expected packed bytes in software.
func referencePack(tbl *table.Table, geom *geometry.Geometry, visible func(r int) bool) []byte {
	var out []byte
	sch := tbl.Schema()
	for r := 0; r < tbl.NumRows(); r++ {
		if visible != nil && !visible(r) {
			continue
		}
		payload := tbl.RowPayload(r)
		for _, c := range geom.Columns() {
			out = append(out, payload[sch.Offset(c):sch.Offset(c)+sch.Column(c).Width]...)
		}
	}
	return out
}

func TestMaterializeMatchesReference(t *testing.T) {
	f := newFixture(t, 500, false)
	for _, cols := range [][]int{{0}, {1, 3}, {4, 0, 2}, {0, 1, 2, 3, 4}} {
		geom := geometry.MustGeometry(f.tbl.Schema(), cols...)
		ev, err := f.eng.Configure(f.tbl, geom)
		if err != nil {
			t.Fatalf("Configure(%v): %v", cols, err)
		}
		got := ev.Materialize()
		want := referencePack(f.tbl, geom, nil)
		if !bytes.Equal(got, want) {
			t.Errorf("cols %v: packed bytes diverge (got %d bytes, want %d)", cols, len(got), len(want))
		}
	}
}

func TestChunkingAcrossBufferBoundary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferBytes = 256 // tiny: forces many refills
	f := newFixture(t, 300, false, cfg)
	geom := geometry.MustGeometry(f.tbl.Schema(), 0, 3) // 16 B packed
	ev, err := f.eng.Configure(f.tbl, geom)
	if err != nil {
		t.Fatalf("Configure: %v", err)
	}
	var total []byte
	chunks := 0
	for {
		ch, ok := ev.Next()
		if !ok {
			break
		}
		chunks++
		if ch.Rows*geom.PackedWidth() != len(ch.Data) {
			t.Fatalf("chunk %d: %d rows but %d bytes", chunks, ch.Rows, len(ch.Data))
		}
		if len(ch.Data) > cfg.BufferBytes {
			t.Fatalf("chunk %d exceeds buffer: %d > %d", chunks, len(ch.Data), cfg.BufferBytes)
		}
		total = append(total, ch.Data...)
	}
	if wantChunks := (300 + 15) / 16; chunks != wantChunks {
		t.Errorf("chunks = %d, want %d (16 rows per 256-byte buffer)", chunks, wantChunks)
	}
	if want := referencePack(f.tbl, geom, nil); !bytes.Equal(total, want) {
		t.Error("chunked materialization diverges from reference")
	}
	if got := f.eng.Stats().Chunks; got != uint64(chunks) {
		t.Errorf("stats chunks = %d, want %d", got, chunks)
	}
}

func TestPackedRowTooLargeForBuffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferBytes = 8
	f := newFixture(t, 10, false, cfg)
	geom := geometry.MustGeometry(f.tbl.Schema(), 0, 3)
	if _, err := f.eng.Configure(f.tbl, geom); err == nil {
		t.Error("packed row larger than buffer accepted")
	}
}

func TestConfigureValidation(t *testing.T) {
	f := newFixture(t, 10, false)
	geom := geometry.MustGeometry(f.tbl.Schema(), 0)
	if _, err := f.eng.Configure(nil, geom); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := f.eng.Configure(f.tbl, nil); err == nil {
		t.Error("nil geometry accepted")
	}
	other := geometry.MustSchema(geometry.Column{Name: "x", Type: geometry.Int64, Width: 8})
	otherGeom := geometry.MustGeometry(other, 0)
	if _, err := f.eng.Configure(f.tbl, otherGeom); err == nil {
		t.Error("mismatched schema accepted")
	}
	if _, err := f.eng.Configure(f.tbl, geom, WithSnapshot(1)); err == nil {
		t.Error("snapshot over non-MVCC table accepted")
	}
	badPred := expr.Conjunction{{Col: 99, Op: expr.Eq, Operand: table.I64(0)}}
	if _, err := f.eng.Configure(f.tbl, geom, WithSelection(badPred)); err == nil {
		t.Error("invalid pushdown predicate accepted")
	}
}

func TestSnapshotFiltering(t *testing.T) {
	f := newFixture(t, 100, true)
	// Kill every third row at ts 5; add ten fresh rows at ts 8.
	for r := 0; r < 100; r += 3 {
		if err := f.tbl.SetEndTS(r, 5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		f.tbl.MustAppend(8, table.I64(int64(1000+i)), table.I32(1), table.Str("z"), table.F64(0), table.I32(2))
	}
	geom := geometry.MustGeometry(f.tbl.Schema(), 0, 1)

	for _, ts := range []uint64{1, 4, 5, 8, 20} {
		ev, err := f.eng.Configure(f.tbl, geom, WithSnapshot(ts))
		if err != nil {
			t.Fatal(err)
		}
		got := ev.Materialize()
		want := referencePack(f.tbl, geom, func(r int) bool { return f.tbl.VisibleAt(r, ts) })
		if !bytes.Equal(got, want) {
			t.Errorf("snapshot %d: packed bytes diverge", ts)
		}
	}
}

func TestSelectionPushdown(t *testing.T) {
	f := newFixture(t, 400, false)
	geom := geometry.MustGeometry(f.tbl.Schema(), 0, 3)
	preds := expr.Conjunction{
		{Col: 1, Op: expr.Lt, Operand: table.I32(50)},
		{Col: 4, Op: expr.Ge, Operand: table.I32(20)},
	}
	ev, err := f.eng.Configure(f.tbl, geom, WithSelection(preds))
	if err != nil {
		t.Fatal(err)
	}
	got := ev.Materialize()
	want := referencePack(f.tbl, geom, func(r int) bool {
		for _, p := range preds {
			v, _ := f.tbl.Get(r, p.Col)
			if !p.Eval(v) {
				return false
			}
		}
		return true
	})
	if !bytes.Equal(got, want) {
		t.Error("selection pushdown result diverges from reference")
	}
	if len(got) == len(referencePack(f.tbl, geom, nil)) {
		t.Error("selection filtered nothing; predicates not selective")
	}
	// Predicate-only columns are gathered but never shipped.
	st := f.eng.Stats()
	if st.BytesShipped != uint64(len(got)) {
		t.Errorf("BytesShipped = %d, want %d", st.BytesShipped, len(got))
	}
}

func TestGatherStrideCoalescing(t *testing.T) {
	f := newFixture(t, 10, false)
	// Columns 0 (off 0, 8B) and 1 (off 8, 4B) are adjacent: one stride.
	ev, err := f.eng.Configure(f.tbl, geometry.MustGeometry(f.tbl.Schema(), 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ev.gatherStrides); n != 1 {
		t.Errorf("adjacent columns gathered as %d strides", n)
	}
	// Columns 0 (8B at 0) and 4 (4B at 25): gap of 17 >= burst 16 keeps
	// them separate.
	ev2, err := f.eng.Configure(f.tbl, geometry.MustGeometry(f.tbl.Schema(), 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ev2.gatherStrides); n != 2 {
		t.Errorf("distant columns gathered as %d strides, want 2", n)
	}
	// Columns 1 (4B at 8) and 3 (8B at 17): gap of 5 < 16 coalesces.
	ev3, err := f.eng.Configure(f.tbl, geometry.MustGeometry(f.tbl.Schema(), 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ev3.gatherStrides); n != 1 {
		t.Errorf("near columns gathered as %d strides, want 1 (coalesced)", n)
	}
	if ev3.GatherBytesPerRow() <= 0 {
		t.Error("GatherBytesPerRow not positive")
	}
}

func TestAggregationPushdownMatchesSoftware(t *testing.T) {
	f := newFixture(t, 300, false)
	geom := geometry.MustGeometry(f.tbl.Schema(), 1, 3)
	preds := expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.I32(70)}}
	ev, err := f.eng.Configure(f.tbl, geom, WithSelection(preds))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.Aggregate([]expr.AggSpec{
		{Kind: expr.Count},
		{Kind: expr.Sum, Col: 1},
		{Kind: expr.Min, Col: 3},
		{Kind: expr.Max, Col: 3},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Software reference.
	var count, sum int64
	var minD, maxD float64
	first := true
	for r := 0; r < f.tbl.NumRows(); r++ {
		b, _ := f.tbl.Get(r, 1)
		if !(b.Int < 70) {
			continue
		}
		d, _ := f.tbl.Get(r, 3)
		count++
		sum += b.Int
		if first || d.Float < minD {
			minD = d.Float
		}
		if first || d.Float > maxD {
			maxD = d.Float
		}
		first = false
	}
	if res.Values[0].Int != count {
		t.Errorf("COUNT = %s, want %d", res.Values[0], count)
	}
	if res.Values[1].Int != sum {
		t.Errorf("SUM = %s, want %d", res.Values[1], sum)
	}
	if res.Values[2].Float != minD || res.Values[3].Float != maxD {
		t.Errorf("MIN/MAX = %s/%s, want %v/%v", res.Values[2], res.Values[3], minD, maxD)
	}
	if res.RowsQualified != int(count) {
		t.Errorf("RowsQualified = %d, want %d", res.RowsQualified, count)
	}
	// Nothing shipped.
	if got := f.eng.Stats().BytesShipped; got != 0 {
		t.Errorf("aggregation pushdown shipped %d bytes", got)
	}
}

func TestAggregateRequiresGeometryColumn(t *testing.T) {
	f := newFixture(t, 10, false)
	ev, err := f.eng.Configure(f.tbl, geometry.MustGeometry(f.tbl.Schema(), 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Aggregate([]expr.AggSpec{{Kind: expr.Sum, Col: 3}}); err == nil {
		t.Error("aggregate over a column outside the configured geometry accepted")
	}
	if _, err := ev.Aggregate(nil); err == nil {
		t.Error("empty spec list accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	f := newFixture(t, 128, false)
	geom := geometry.MustGeometry(f.tbl.Schema(), 0, 1)
	ev, err := f.eng.Configure(f.tbl, geom)
	if err != nil {
		t.Fatal(err)
	}
	packed := ev.Materialize()
	st := f.eng.Stats()
	if st.RowsScanned != 128 || st.RowsShipped != 128 {
		t.Errorf("rows scanned/shipped = %d/%d", st.RowsScanned, st.RowsShipped)
	}
	if st.BytesShipped != uint64(len(packed)) {
		t.Errorf("BytesShipped = %d, want %d", st.BytesShipped, len(packed))
	}
	if st.BytesGathered == 0 || st.GatherCycles == 0 || st.ComputeCycles == 0 {
		t.Errorf("zero gather accounting: %+v", st)
	}
	// Shipped data is never more than gathered data for a projection.
	if st.BytesShipped > st.BytesGathered {
		t.Errorf("shipped %d > gathered %d", st.BytesShipped, st.BytesGathered)
	}
}

func TestResetReplaysIdentically(t *testing.T) {
	f := newFixture(t, 77, false)
	ev, err := f.eng.Configure(f.tbl, geometry.MustGeometry(f.tbl.Schema(), 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), ev.Materialize()...)
	second := ev.Materialize()
	if !bytes.Equal(first, second) {
		t.Error("second materialization differs from first")
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.BufferBytes = 0 },
		func(c *Config) { c.ClockRatio = 0 },
		func(c *Config) { c.MaxOutstanding = 0 },
		func(c *Config) { c.RowsPerCycle = 0 },
		func(c *Config) { c.BeatBytes = 0 },
		func(c *Config) { c.TSCheckCycles = -1 },
		func(c *Config) { c.RefillCycles = -1 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestMaterializeProperty: for random row counts, geometries, and snapshot
// kill patterns, the fabric's packed output equals the software reference.
func TestMaterializeProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(200)
		f := newFixtureQ(rows, rng)
		nCols := f.tbl.Schema().NumColumns()
		var cols []int
		for c := 0; c < nCols; c++ {
			if rng.Intn(2) == 0 {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			cols = []int{rng.Intn(nCols)}
		}
		rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
		geom, err := geometry.NewGeometry(f.tbl.Schema(), cols...)
		if err != nil {
			return false
		}
		// Random snapshot pattern.
		ts := uint64(rng.Intn(10))
		for r := 0; r < rows; r++ {
			if rng.Intn(4) == 0 {
				_ = f.tbl.SetEndTS(r, uint64(rng.Intn(10)))
			}
		}
		ev, err := f.eng.Configure(f.tbl, geom, WithSnapshot(ts))
		if err != nil {
			return false
		}
		got := ev.Materialize()
		want := referencePack(f.tbl, geom, func(r int) bool { return f.tbl.VisibleAt(r, ts) })
		return bytes.Equal(got, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// newFixtureQ is the property-test fixture builder (MVCC, small buffer so
// chunking is exercised too).
func newFixtureQ(rows int, rng *rand.Rand) *fixture {
	cfg := DefaultConfig()
	cfg.BufferBytes = 128 + rng.Intn(512)
	mem := dram.MustNew(dram.DefaultConfig())
	arena := dram.MustArena(0, 64)
	eng := MustNew(cfg, mem, arena)
	sch := geometry.MustSchema(
		geometry.Column{Name: "a", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "b", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "c", Type: geometry.Char, Width: 3},
	)
	stride := sch.RowBytes() + table.MVCCHeaderBytes
	tbl := table.MustNew("q", sch, table.WithMVCC(),
		table.WithBaseAddr(arena.Alloc(int64(rows*stride))), table.WithCapacity(rows))
	for r := 0; r < rows; r++ {
		tbl.MustAppend(uint64(rng.Intn(5)),
			table.I64(rng.Int63()),
			table.I32(rng.Int31()),
			table.Str(string(rune('a'+rng.Intn(26)))),
		)
	}
	return &fixture{eng: eng, tbl: tbl}
}
