package compress

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// HuffmanBlob is canonical-Huffman-coded data with a block index: the input
// is coded in fixed-size blocks whose bit offsets are recorded, so a single
// block can be decoded without touching the rest — the granularity at which
// the fabric can serve scattered accesses over Huffman data (§III-D).
type HuffmanBlob struct {
	blockLen   int // input bytes per block
	size       int // original length
	codeLens   [256]uint8
	bits       []byte
	blockBits  []int // starting bit of each block
	haveSymbol [256]bool
}

type huffNode struct {
	sym         int // -1 for internal
	count       uint64
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int            { return len(h) }
func (h huffHeap) Less(i, j int) bool  { return h[i].count < h[j].count }
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// EncodeHuffman codes data with blockLen input bytes per indexed block.
func EncodeHuffman(data []byte, blockLen int) (*HuffmanBlob, error) {
	if blockLen <= 0 {
		return nil, fmt.Errorf("compress: non-positive huffman block length %d", blockLen)
	}
	hb := &HuffmanBlob{blockLen: blockLen, size: len(data)}
	if len(data) == 0 {
		return hb, nil
	}

	var counts [256]uint64
	for _, b := range data {
		counts[b]++
		hb.haveSymbol[b] = true
	}

	// Build the tree and derive code lengths.
	h := &huffHeap{}
	heap.Init(h)
	for s, c := range counts {
		if c > 0 {
			heap.Push(h, &huffNode{sym: s, count: c})
		}
	}
	if h.Len() == 1 {
		// Degenerate single-symbol input: give it a 1-bit code.
		hb.codeLens[(*h)[0].sym] = 1
	} else {
		for h.Len() > 1 {
			a := heap.Pop(h).(*huffNode)
			b := heap.Pop(h).(*huffNode)
			heap.Push(h, &huffNode{sym: -1, count: a.count + b.count, left: a, right: b})
		}
		assignLens(heap.Pop(h).(*huffNode), 0, &hb.codeLens)
	}

	codes := canonicalCodes(hb.codeLens)

	// Encode block by block, recording bit offsets.
	bitPos := 0
	for start := 0; start < len(data); start += blockLen {
		hb.blockBits = append(hb.blockBits, bitPos)
		end := start + blockLen
		if end > len(data) {
			end = len(data)
		}
		for _, b := range data[start:end] {
			l := int(hb.codeLens[b])
			c := codes[b]
			need := (bitPos + l + 7) / 8
			for len(hb.bits) < need {
				hb.bits = append(hb.bits, 0)
			}
			// Canonical codes are written MSB-first.
			for i := l - 1; i >= 0; i-- {
				if c&(1<<uint(i)) != 0 {
					hb.bits[bitPos/8] |= 1 << uint(7-bitPos%8)
				}
				bitPos++
			}
		}
	}
	return hb, nil
}

func assignLens(n *huffNode, depth uint8, lens *[256]uint8) {
	if n.sym >= 0 {
		if depth == 0 {
			depth = 1
		}
		lens[n.sym] = depth
		return
	}
	assignLens(n.left, depth+1, lens)
	assignLens(n.right, depth+1, lens)
}

// canonicalCodes derives canonical codes from code lengths.
func canonicalCodes(lens [256]uint8) [256]uint32 {
	type sl struct {
		sym int
		l   uint8
	}
	var order []sl
	for s, l := range lens {
		if l > 0 {
			order = append(order, sl{s, l})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].l != order[j].l {
			return order[i].l < order[j].l
		}
		return order[i].sym < order[j].sym
	})
	var codes [256]uint32
	code := uint32(0)
	prevLen := uint8(0)
	for _, e := range order {
		code <<= uint(e.l - prevLen)
		codes[e.sym] = code
		code++
		prevLen = e.l
	}
	return codes
}

// Size returns the original byte length.
func (hb *HuffmanBlob) Size() int { return hb.size }

// Blocks returns how many indexed blocks the blob holds.
func (hb *HuffmanBlob) Blocks() int { return len(hb.blockBits) }

// EncodedSize returns the coded bytes plus index overhead.
func (hb *HuffmanBlob) EncodedSize() int {
	return len(hb.bits) + len(hb.blockBits)*4 + 256
}

// DecodeBlock decodes block b (the random-access unit).
func (hb *HuffmanBlob) DecodeBlock(b int) ([]byte, error) {
	if b < 0 || b >= len(hb.blockBits) {
		return nil, fmt.Errorf("compress: block %d out of range [0,%d)", b, len(hb.blockBits))
	}
	start := b * hb.blockLen
	end := start + hb.blockLen
	if end > hb.size {
		end = hb.size
	}
	return hb.decode(hb.blockBits[b], end-start)
}

// DecodeAll reconstructs the original input.
func (hb *HuffmanBlob) DecodeAll() ([]byte, error) {
	if hb.size == 0 {
		return nil, nil
	}
	out := make([]byte, 0, hb.size)
	for b := 0; b < hb.Blocks(); b++ {
		blk, err := hb.DecodeBlock(b)
		if err != nil {
			return nil, err
		}
		out = append(out, blk...)
	}
	return out, nil
}

// decode reads n symbols starting at bit offset.
func (hb *HuffmanBlob) decode(bitPos, n int) ([]byte, error) {
	codes := canonicalCodes(hb.codeLens)
	// Build a (length, code) → symbol map; fine for 256 symbols.
	type key struct {
		l uint8
		c uint32
	}
	bySym := make(map[key]byte, 256)
	for s := 0; s < 256; s++ {
		if hb.codeLens[s] > 0 {
			bySym[key{hb.codeLens[s], codes[s]}] = byte(s)
		}
	}
	out := make([]byte, 0, n)
	var cur uint32
	var curLen uint8
	for len(out) < n {
		if bitPos >= len(hb.bits)*8 {
			return nil, errors.New("compress: huffman stream truncated")
		}
		cur = cur<<1 | uint32((hb.bits[bitPos/8]>>uint(7-bitPos%8))&1)
		curLen++
		bitPos++
		if s, ok := bySym[key{curLen, cur}]; ok {
			out = append(out, s)
			cur, curLen = 0, 0
		}
		if curLen > 32 {
			return nil, errors.New("compress: huffman code longer than 32 bits")
		}
	}
	return out, nil
}
