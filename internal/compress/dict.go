package compress

import (
	"bytes"
	"errors"
	"fmt"
)

// DictColumn is a dictionary-encoded fixed-width column: distinct values go
// into a dictionary and each row stores a fixed-width code. Codes are
// randomly addressable, which is what lets the fabric project a dictionary-
// compressed column group without decompressing neighbours (§III-D).
type DictColumn struct {
	width     int    // bytes per original value
	codeWidth int    // 1, 2, or 4 bytes per code
	dict      []byte // cardinality * width bytes
	codes     []byte // rows * codeWidth bytes
	rows      int
}

// EncodeDict dictionary-encodes a dense column of rows fixed-width values.
func EncodeDict(data []byte, width int) (*DictColumn, error) {
	if width <= 0 {
		return nil, fmt.Errorf("compress: non-positive value width %d", width)
	}
	if len(data)%width != 0 {
		return nil, fmt.Errorf("compress: data length %d not a multiple of width %d", len(data), width)
	}
	rows := len(data) / width
	index := make(map[string]uint32)
	var dict []byte
	ids := make([]uint32, rows)
	for r := 0; r < rows; r++ {
		v := data[r*width : (r+1)*width]
		id, ok := index[string(v)]
		if !ok {
			id = uint32(len(index))
			if id == 1<<32-1 {
				return nil, errors.New("compress: dictionary overflow")
			}
			index[string(v)] = id
			dict = append(dict, v...)
		}
		ids[r] = id
	}
	codeWidth := 4
	switch card := len(index); {
	case card <= 1<<8:
		codeWidth = 1
	case card <= 1<<16:
		codeWidth = 2
	}
	codes := make([]byte, rows*codeWidth)
	for r, id := range ids {
		putCode(codes[r*codeWidth:], id, codeWidth)
	}
	return &DictColumn{width: width, codeWidth: codeWidth, dict: dict, codes: codes, rows: rows}, nil
}

func putCode(dst []byte, id uint32, w int) {
	for i := 0; i < w; i++ {
		dst[i] = byte(id >> (8 * uint(i)))
	}
}

func getCode(src []byte, w int) uint32 {
	var id uint32
	for i := 0; i < w; i++ {
		id |= uint32(src[i]) << (8 * uint(i))
	}
	return id
}

// Rows returns the number of encoded values.
func (d *DictColumn) Rows() int { return d.rows }

// Cardinality returns the dictionary size.
func (d *DictColumn) Cardinality() int { return len(d.dict) / d.width }

// CodeWidth returns bytes per stored code.
func (d *DictColumn) CodeWidth() int { return d.codeWidth }

// EncodedSize returns total encoded bytes (codes + dictionary).
func (d *DictColumn) EncodedSize() int { return len(d.codes) + len(d.dict) }

// At decodes the value of row r into a fresh slice.
func (d *DictColumn) At(r int) ([]byte, error) {
	if r < 0 || r >= d.rows {
		return nil, fmt.Errorf("compress: row %d out of range [0,%d)", r, d.rows)
	}
	id := getCode(d.codes[r*d.codeWidth:], d.codeWidth)
	out := make([]byte, d.width)
	copy(out, d.dict[int(id)*d.width:])
	return out, nil
}

// DecodeAll reconstructs the original dense column.
func (d *DictColumn) DecodeAll() []byte {
	out := make([]byte, d.rows*d.width)
	for r := 0; r < d.rows; r++ {
		id := getCode(d.codes[r*d.codeWidth:], d.codeWidth)
		copy(out[r*d.width:], d.dict[int(id)*d.width:int(id)*d.width+d.width])
	}
	return out
}

// Equal reports whether the decoded contents match data (test helper).
func (d *DictColumn) Equal(data []byte) bool {
	return bytes.Equal(d.DecodeAll(), data)
}
