package compress

import (
	"fmt"
	"math/bits"
)

// deltaBlockLen is the frame size of the frame-of-reference encoding.
const deltaBlockLen = 128

// DeltaColumn is a frame-of-reference (FOR) encoding of int64 values:
// each 128-value block stores its minimum and bit-packed offsets from it.
// Both the block and the bit position of any value are computable from the
// row number, so the encoding is fabric-compatible (§III-D).
type DeltaColumn struct {
	rows   int
	mins   []int64
	widths []uint8 // bits per packed offset, per block
	packed [][]byte
}

// EncodeDelta frame-of-reference-encodes the values.
func EncodeDelta(values []int64) *DeltaColumn {
	d := &DeltaColumn{rows: len(values)}
	for start := 0; start < len(values); start += deltaBlockLen {
		end := start + deltaBlockLen
		if end > len(values) {
			end = len(values)
		}
		block := values[start:end]
		min := block[0]
		for _, v := range block {
			if v < min {
				min = v
			}
		}
		var maxDelta uint64
		for _, v := range block {
			if dlt := uint64(v - min); dlt > maxDelta {
				maxDelta = dlt
			}
		}
		width := uint8(bits.Len64(maxDelta))
		packed := make([]byte, (len(block)*int(width)+7)/8)
		for i, v := range block {
			packBits(packed, i*int(width), uint64(v-min), int(width))
		}
		d.mins = append(d.mins, min)
		d.widths = append(d.widths, width)
		d.packed = append(d.packed, packed)
	}
	return d
}

// packBits writes the low `width` bits of v at bit offset off.
func packBits(dst []byte, off int, v uint64, width int) {
	for i := 0; i < width; i++ {
		if v&(1<<uint(i)) != 0 {
			dst[(off+i)/8] |= 1 << uint((off+i)%8)
		}
	}
}

// unpackBits reads `width` bits at bit offset off.
func unpackBits(src []byte, off, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if src[(off+i)/8]&(1<<uint((off+i)%8)) != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Rows returns the number of encoded values.
func (d *DeltaColumn) Rows() int { return d.rows }

// EncodedSize returns total encoded bytes.
func (d *DeltaColumn) EncodedSize() int {
	n := len(d.mins) * 9 // min + width per block
	for _, p := range d.packed {
		n += len(p)
	}
	return n
}

// At decodes the value at row r — a computable block + bit offset, no
// sequential state.
func (d *DeltaColumn) At(r int) (int64, error) {
	if r < 0 || r >= d.rows {
		return 0, fmt.Errorf("compress: row %d out of range [0,%d)", r, d.rows)
	}
	b := r / deltaBlockLen
	i := r % deltaBlockLen
	w := int(d.widths[b])
	return d.mins[b] + int64(unpackBits(d.packed[b], i*w, w)), nil
}

// DecodeAll reconstructs all values.
func (d *DeltaColumn) DecodeAll() []int64 {
	out := make([]int64, d.rows)
	for r := range out {
		v, _ := d.At(r)
		out[r] = v
	}
	return out
}
