package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecsCatalog(t *testing.T) {
	codecs := Codecs()
	if len(codecs) != 5 {
		t.Fatalf("got %d codecs, want 5", len(codecs))
	}
	wantRandom := map[string]bool{
		"dictionary": true, "delta": true, "huffman": true,
		"rle": false, "lz77": false,
	}
	for _, c := range codecs {
		want, ok := wantRandom[c.Name]
		if !ok {
			t.Errorf("unexpected codec %q", c.Name)
			continue
		}
		if c.RandomAccess != want {
			t.Errorf("%s.RandomAccess = %v, want %v", c.Name, c.RandomAccess, want)
		}
		if c.Reason == "" {
			t.Errorf("%s has no documented reason", c.Name)
		}
	}
}

func TestDictRoundTrip(t *testing.T) {
	values := []string{"AIR", "SEA", "ROAD", "AIR", "AIR", "SEA"}
	var data []byte
	for _, v := range values {
		cell := make([]byte, 4)
		copy(cell, v)
		data = append(data, cell...)
	}
	d, err := EncodeDict(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cardinality() != 3 {
		t.Errorf("cardinality = %d, want 3", d.Cardinality())
	}
	if d.CodeWidth() != 1 {
		t.Errorf("code width = %d, want 1", d.CodeWidth())
	}
	if !d.Equal(data) {
		t.Error("round trip failed")
	}
	v, err := d.At(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(v[:3]) != "AIR" {
		t.Errorf("At(3) = %q", v)
	}
	if _, err := d.At(6); err == nil {
		t.Error("out-of-range At accepted")
	}
}

func TestDictCodeWidthGrowth(t *testing.T) {
	// 300 distinct 2-byte values forces 2-byte codes.
	var data []byte
	for i := 0; i < 300; i++ {
		data = append(data, byte(i), byte(i>>8))
	}
	d, err := EncodeDict(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.CodeWidth() != 2 {
		t.Errorf("code width = %d, want 2 for 300 distinct values", d.CodeWidth())
	}
	if !d.Equal(data) {
		t.Error("round trip failed")
	}
}

func TestDictValidation(t *testing.T) {
	if _, err := EncodeDict([]byte{1, 2, 3}, 2); err == nil {
		t.Error("misaligned data accepted")
	}
	if _, err := EncodeDict(nil, 0); err == nil {
		t.Error("zero width accepted")
	}
}

// TestDictRoundTripProperty: encode/decode is identity and At(i) matches
// the original cell, for random columns.
func TestDictRoundTripProperty(t *testing.T) {
	check := func(seed int64, widthSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		width := int(widthSel%8) + 1
		rows := rng.Intn(300) + 1
		distinct := rng.Intn(20) + 1
		pool := make([][]byte, distinct)
		for i := range pool {
			pool[i] = make([]byte, width)
			rng.Read(pool[i])
		}
		var data []byte
		for r := 0; r < rows; r++ {
			data = append(data, pool[rng.Intn(distinct)]...)
		}
		d, err := EncodeDict(data, width)
		if err != nil {
			return false
		}
		if !d.Equal(data) {
			return false
		}
		r := rng.Intn(rows)
		v, err := d.At(r)
		if err != nil {
			return false
		}
		return bytes.Equal(v, data[r*width:(r+1)*width])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	values := []int64{100, 101, 99, 150, 100, 100, 250}
	d := EncodeDelta(values)
	got := d.DecodeAll()
	for i, v := range values {
		if got[i] != v {
			t.Errorf("DecodeAll[%d] = %d, want %d", i, got[i], v)
		}
	}
	if _, err := d.At(len(values)); err == nil {
		t.Error("out-of-range At accepted")
	}
}

func TestDeltaCompressesNarrowRanges(t *testing.T) {
	values := make([]int64, 10_000)
	for i := range values {
		values[i] = 1_000_000_000 + int64(i%16)
	}
	d := EncodeDelta(values)
	if raw := len(values) * 8; d.EncodedSize() >= raw/4 {
		t.Errorf("narrow-range data compressed to %d of %d bytes; expected > 4x", d.EncodedSize(), raw)
	}
}

// TestDeltaRoundTripProperty covers negative values, constants, and wide
// ranges (including values needing all 64 bits of delta).
func TestDeltaRoundTripProperty(t *testing.T) {
	check := func(values []int64) bool {
		if len(values) == 0 {
			return true
		}
		d := EncodeDelta(values)
		if d.Rows() != len(values) {
			return false
		}
		got := d.DecodeAll()
		for i := range values {
			if got[i] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanRoundTrip(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog, the dog sleeps")
	hb, err := EncodeHuffman(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hb.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("round trip failed: %q", got)
	}
	// Block random access.
	blk, err := hb.DecodeBlock(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blk, data[32:48]) {
		t.Errorf("DecodeBlock(2) = %q, want %q", blk, data[32:48])
	}
	if _, err := hb.DecodeBlock(99); err == nil {
		t.Error("out-of-range block accepted")
	}
}

func TestHuffmanDegenerateInputs(t *testing.T) {
	// Empty input.
	hb, err := EncodeHuffman(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := hb.DecodeAll(); err != nil || len(got) != 0 {
		t.Errorf("empty round trip: %v, %v", got, err)
	}
	// Single-symbol input (degenerate tree).
	one := bytes.Repeat([]byte{'x'}, 100)
	hb2, err := EncodeHuffman(one, 32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hb2.DecodeAll()
	if err != nil || !bytes.Equal(got, one) {
		t.Errorf("single-symbol round trip failed: %v", err)
	}
	if _, err := EncodeHuffman(one, 0); err == nil {
		t.Error("zero block length accepted")
	}
}

func TestHuffmanCompressesSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 50_000)
	for i := range data {
		// Heavy skew: mostly 'a', some 'b'..'e'.
		if rng.Intn(10) == 0 {
			data[i] = byte('b' + rng.Intn(4))
		} else {
			data[i] = 'a'
		}
	}
	hb, err := EncodeHuffman(data, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if hb.EncodedSize() >= len(data)/2 {
		t.Errorf("skewed data compressed to %d of %d bytes", hb.EncodedSize(), len(data))
	}
}

// TestHuffmanRoundTripProperty: arbitrary byte strings survive.
func TestHuffmanRoundTripProperty(t *testing.T) {
	check := func(data []byte, blockSel uint8) bool {
		block := int(blockSel%64) + 1
		hb, err := EncodeHuffman(data, block)
		if err != nil {
			return false
		}
		got, err := hb.DecodeAll()
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRLERoundTrip(t *testing.T) {
	data := []byte{1, 1, 1, 2, 2, 3, 1, 1}
	c, err := EncodeRLE(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Runs() != 4 {
		t.Errorf("runs = %d, want 4", c.Runs())
	}
	if !bytes.Equal(c.DecodeAll(), data) {
		t.Error("round trip failed")
	}
	for i, want := range data {
		v, err := c.At(i)
		if err != nil {
			t.Fatal(err)
		}
		if v[0] != want {
			t.Errorf("At(%d) = %d, want %d", i, v[0], want)
		}
	}
	if _, err := c.At(8); err == nil {
		t.Error("out-of-range At accepted")
	}
}

// TestRLERoundTripProperty with multi-byte values.
func TestRLERoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := rng.Intn(6) + 1
		runs := rng.Intn(20) + 1
		var data []byte
		for r := 0; r < runs; r++ {
			v := make([]byte, width)
			rng.Read(v)
			repeat := rng.Intn(10) + 1
			for k := 0; k < repeat; k++ {
				data = append(data, v...)
			}
		}
		c, err := EncodeRLE(data, width)
		if err != nil {
			return false
		}
		if !bytes.Equal(c.DecodeAll(), data) {
			return false
		}
		r := rng.Intn(c.Rows())
		v, err := c.At(r)
		if err != nil {
			return false
		}
		return bytes.Equal(v, data[r*width:(r+1)*width])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLZ77RoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("relational fabric "), 64)
	enc := EncodeLZ77(data)
	if len(enc) >= len(data)/2 {
		t.Errorf("repetitive data compressed to %d of %d bytes", len(enc), len(data))
	}
	got, err := DecodeLZ77(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip failed")
	}
}

func TestLZ77RejectsCorruptStreams(t *testing.T) {
	bad := [][]byte{
		{0x02},             // unknown opcode
		{0x00, 5, 1, 2},    // literals truncated
		{0x01, 0, 0, 0},    // zero distance
		{0x01, 10, 0, 0},   // distance beyond output
		{0x01, 1},          // match header truncated
		{0x00},             // literal header truncated
		{0x00, 0, 0x01, 5}, // valid empty literal then bad match
	}
	for i, enc := range bad {
		if _, err := DecodeLZ77(enc); err == nil {
			t.Errorf("corrupt stream %d accepted", i)
		}
	}
}

// TestLZ77RoundTripProperty: arbitrary data survives, including
// incompressible noise.
func TestLZ77RoundTripProperty(t *testing.T) {
	check := func(data []byte) bool {
		got, err := DecodeLZ77(EncodeLZ77(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
