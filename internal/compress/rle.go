package compress

import (
	"bytes"
	"fmt"
)

// RLEColumn is a run-length encoding of fixed-width values. Locating row r
// requires walking the runs (or a search over cumulative counts) — the data-
// dependent layout that makes RLE unusable for the fabric's computed-offset
// gathers "out of the box" (§III-D).
type RLEColumn struct {
	width int
	runs  []rleRun
	rows  int
}

type rleRun struct {
	value []byte
	count int
	// cum is the number of rows before this run, kept so tests can show
	// that even "random access" needs a search, not an offset computation.
	cum int
}

// EncodeRLE run-length-encodes a dense column of fixed-width values.
func EncodeRLE(data []byte, width int) (*RLEColumn, error) {
	if width <= 0 {
		return nil, fmt.Errorf("compress: non-positive value width %d", width)
	}
	if len(data)%width != 0 {
		return nil, fmt.Errorf("compress: data length %d not a multiple of width %d", len(data), width)
	}
	c := &RLEColumn{width: width, rows: len(data) / width}
	for r := 0; r < c.rows; r++ {
		v := data[r*width : (r+1)*width]
		if n := len(c.runs); n > 0 && bytes.Equal(c.runs[n-1].value, v) {
			c.runs[n-1].count++
			continue
		}
		val := make([]byte, width)
		copy(val, v)
		c.runs = append(c.runs, rleRun{value: val, count: 1, cum: r})
	}
	return c, nil
}

// Rows returns the number of encoded values.
func (c *RLEColumn) Rows() int { return c.rows }

// Runs returns the number of runs.
func (c *RLEColumn) Runs() int { return len(c.runs) }

// EncodedSize returns total encoded bytes (value + count per run).
func (c *RLEColumn) EncodedSize() int { return len(c.runs) * (c.width + 4) }

// At locates row r by binary search over run boundaries. It works, but the
// position depends on the data — no fixed stride a gather engine could be
// programmed with.
func (c *RLEColumn) At(r int) ([]byte, error) {
	if r < 0 || r >= c.rows {
		return nil, fmt.Errorf("compress: row %d out of range [0,%d)", r, c.rows)
	}
	lo, hi := 0, len(c.runs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.runs[mid].cum <= r {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	out := make([]byte, c.width)
	copy(out, c.runs[lo].value)
	return out, nil
}

// DecodeAll reconstructs the original dense column.
func (c *RLEColumn) DecodeAll() []byte {
	out := make([]byte, 0, c.rows*c.width)
	for _, run := range c.runs {
		for i := 0; i < run.count; i++ {
			out = append(out, run.value...)
		}
	}
	return out
}
