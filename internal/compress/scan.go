package compress

import (
	"fmt"

	"rfabric/internal/table"
)

// Scan-without-decompress: predicate evaluation over the encoded form of a
// column instead of its decoded rows. RLE evaluates once per run, dictionary
// encoding once per distinct entry — the §III-D observation that the encoded
// representation is often far smaller than the data, so a near-data engine
// can resolve a predicate by touching the dictionary (or the run headers)
// and never reconstruct the column. The decode work these scans do perform
// is reported back to the caller so it can be charged where it ran (the
// fabric, for offloaded scans).

// CodeSet is the set of dictionary codes whose entries satisfy a predicate —
// the translated, code-domain form of a value-domain predicate. Membership
// tests are O(1) bit probes, which is what lets a scan filter dictionary-
// encoded rows without decoding a single one.
type CodeSet struct {
	bits []uint64
	n    int
}

// Add inserts a code.
func (s *CodeSet) Add(code int) {
	if code < 0 {
		return
	}
	w := code >> 6
	for len(s.bits) <= w {
		s.bits = append(s.bits, 0)
	}
	mask := uint64(1) << uint(code&63)
	if s.bits[w]&mask == 0 {
		s.bits[w] |= mask
		s.n++
	}
}

// Contains reports membership.
func (s *CodeSet) Contains(code int) bool {
	if s == nil || code < 0 {
		return false
	}
	w := code >> 6
	if w >= len(s.bits) {
		return false
	}
	return s.bits[w]&(1<<uint(code&63)) != 0
}

// Len returns the number of codes in the set.
func (s *CodeSet) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// MatchCodes evaluates pred once per distinct dictionary entry and returns
// the qualifying code set plus the number of entries decoded — the whole
// decode cost of filtering the column, however many rows reference each
// entry.
func (d *DictColumn) MatchCodes(pred func(entry []byte) bool) (*CodeSet, int) {
	set := &CodeSet{}
	card := d.Cardinality()
	for id := 0; id < card; id++ {
		if pred(d.dict[id*d.width : (id+1)*d.width]) {
			set.Add(id)
		}
	}
	return set, card
}

// CodeAt returns row r's dictionary code without decoding the value.
func (d *DictColumn) CodeAt(r int) (int, error) {
	if r < 0 || r >= d.rows {
		return 0, fmt.Errorf("compress: row %d out of range [0,%d)", r, d.rows)
	}
	return int(getCode(d.codes[r*d.codeWidth:], d.codeWidth)), nil
}

// RunScan is the outcome of one predicate pass over an RLE column's runs.
type RunScan struct {
	// MatchedRows is how many rows the predicate selects.
	MatchedRows int
	// RunsEvaluated is how many run values were decoded and tested — the
	// scan's whole decode cost, independent of row count.
	RunsEvaluated int
}

// ScanRuns evaluates pred once per run and credits every row of a matching
// run, never reconstructing the column.
func (c *RLEColumn) ScanRuns(pred func(value []byte) bool) RunScan {
	var out RunScan
	for _, run := range c.runs {
		out.RunsEvaluated++
		if pred(run.value) {
			out.MatchedRows += run.count
		}
	}
	return out
}

// MatchRuns returns the qualifying row ranges [start, start+count) in row
// order, for callers that need positions rather than a count.
func (c *RLEColumn) MatchRuns(pred func(value []byte) bool) (ranges [][2]int, runsEvaluated int) {
	for _, run := range c.runs {
		runsEvaluated++
		if pred(run.value) {
			ranges = append(ranges, [2]int{run.cum, run.count})
		}
	}
	return ranges, runsEvaluated
}

// MatchCodes translates a value-domain predicate over an encoded column into
// its code-domain set: pred sees each dictionary entry decoded to the
// original column type, and the returned set holds the codes whose entries
// qualify. entries is the number of dictionary entries decoded.
func (e *EncodedTable) MatchCodes(col int, pred func(v table.Value) bool) (set *CodeSet, entries int, err error) {
	d, ok := e.Dicts[col]
	if !ok {
		return nil, 0, fmt.Errorf("compress: column %d is not dictionary-encoded", col)
	}
	def := e.src.Column(col)
	set, entries = d.MatchCodes(func(raw []byte) bool {
		return pred(table.DecodeColumn(def, raw))
	})
	return set, entries, nil
}
