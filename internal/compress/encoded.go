package compress

import (
	"errors"
	"fmt"

	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// EncodedTable is a row table whose chosen columns are stored as fixed-width
// dictionary codes instead of their raw values. Because codes are
// fixed-width and positionally addressable, the fabric gathers and ships
// them like any other column (§III-D: dictionary encoding "can be used in
// row-oriented data, and hence ... can benefit any groups of columns
// requested by ephemeral columns"); the consumer decodes shipped codes
// against the (cache-resident) dictionaries. The physical rows shrink, so
// both the fabric's gathers and the baselines' scans move fewer bytes.
type EncodedTable struct {
	// Table is the re-encoded physical table. Encoded columns keep their
	// names but become INT code columns.
	Table *table.Table
	// Dicts maps column index -> dictionary for the encoded columns.
	Dicts map[int]*DictColumn

	src *geometry.Schema
}

// EncodeTableDict rewrites src with the given columns dictionary-encoded.
// The new table is placed at baseAddr (use an arena to obtain one).
func EncodeTableDict(src *table.Table, cols []int, baseAddr int64) (*EncodedTable, error) {
	if src == nil {
		return nil, errors.New("compress: nil table")
	}
	if src.HasMVCC() {
		return nil, errors.New("compress: MVCC tables cannot be re-encoded in place")
	}
	if len(cols) == 0 {
		return nil, errors.New("compress: no columns to encode")
	}
	sch := src.Schema()
	toEncode := map[int]bool{}
	for _, c := range cols {
		if c < 0 || c >= sch.NumColumns() {
			return nil, fmt.Errorf("compress: column %d out of range", c)
		}
		if toEncode[c] {
			return nil, fmt.Errorf("compress: column %d listed twice", c)
		}
		toEncode[c] = true
	}

	// Build dictionaries from the dense column data.
	dicts := map[int]*DictColumn{}
	for c := range toEncode {
		w := sch.Column(c).Width
		raw := make([]byte, 0, src.NumRows()*w)
		for r := 0; r < src.NumRows(); r++ {
			p := src.RowPayload(r)
			raw = append(raw, p[sch.Offset(c):sch.Offset(c)+w]...)
		}
		d, err := EncodeDict(raw, w)
		if err != nil {
			return nil, fmt.Errorf("compress: column %q: %w", sch.Column(c).Name, err)
		}
		dicts[c] = d
	}

	// New schema: encoded columns become INT codes.
	defs := make([]geometry.Column, sch.NumColumns())
	for c := 0; c < sch.NumColumns(); c++ {
		defs[c] = sch.Column(c)
		if toEncode[c] {
			defs[c] = geometry.Column{Name: sch.Column(c).Name, Type: geometry.Int32, Width: 4}
		}
	}
	encSchema, err := geometry.NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	enc, err := table.New(src.Name()+".dict", encSchema,
		table.WithCapacity(src.NumRows()), table.WithBaseAddr(baseAddr))
	if err != nil {
		return nil, err
	}

	// Re-encode every row.
	vals := make([]table.Value, sch.NumColumns())
	for r := 0; r < src.NumRows(); r++ {
		for c := 0; c < sch.NumColumns(); c++ {
			v, err := src.Get(r, c)
			if err != nil {
				return nil, err
			}
			if !toEncode[c] {
				vals[c] = v
				continue
			}
			d := dicts[c]
			code := getCode(d.codes[r*d.codeWidth:], d.codeWidth)
			vals[c] = table.I32(int32(code))
		}
		if _, err := enc.Append(0, vals...); err != nil {
			return nil, err
		}
	}
	return &EncodedTable{Table: enc, Dicts: dicts, src: sch}, nil
}

// Decode maps a shipped value back to its original form: codes of encoded
// columns are resolved through the dictionary, everything else passes
// through.
func (e *EncodedTable) Decode(col int, v table.Value) (table.Value, error) {
	d, ok := e.Dicts[col]
	if !ok {
		return v, nil
	}
	raw := d.dict
	id := int(v.Int)
	if id < 0 || (id+1)*d.width > len(raw) {
		return table.Value{}, fmt.Errorf("compress: code %d out of dictionary range", id)
	}
	return table.DecodeColumn(e.src.Column(col), raw[id*d.width:(id+1)*d.width]), nil
}

// SavedBytesPerRow reports how much narrower each physical row became.
func (e *EncodedTable) SavedBytesPerRow() int {
	saved := 0
	for c, d := range e.Dicts {
		saved += e.src.Column(c).Width - 4
		_ = d
	}
	return saved
}

// DictionaryBytes is the total resident dictionary footprint the consumer
// keeps warm.
func (e *EncodedTable) DictionaryBytes() int {
	total := 0
	for _, d := range e.Dicts {
		total += len(d.dict)
	}
	return total
}
