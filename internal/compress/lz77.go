package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// LZ77 is a small sliding-window compressor in the LZ family the paper says
// row stores frequently use but which "require fully decompressing your
// data before you can access separate columns" (§III-D). Back-references
// reach up to lzWindow bytes back, so nothing short of sequential decode
// reconstructs an arbitrary offset.
const (
	lzWindow   = 4096
	lzMinMatch = 4
	lzMaxMatch = 255 + lzMinMatch
)

// EncodeLZ77 compresses data. The format is a sequence of ops:
// 0x00 <len:1> <literals...> or 0x01 <dist:2> <len:1>.
func EncodeLZ77(data []byte) []byte {
	var out []byte
	var lits []byte
	flushLits := func() {
		for len(lits) > 0 {
			n := len(lits)
			if n > 255 {
				n = 255
			}
			out = append(out, 0x00, byte(n))
			out = append(out, lits[:n]...)
			lits = lits[n:]
		}
	}

	// Hash-chain-free greedy matcher: scan a bounded window. Fine for the
	// sizes the tests and benches use; clarity over speed.
	i := 0
	for i < len(data) {
		bestLen, bestDist := 0, 0
		lo := i - lzWindow
		if lo < 0 {
			lo = 0
		}
		maxLen := len(data) - i
		if maxLen > lzMaxMatch {
			maxLen = lzMaxMatch
		}
		if maxLen >= lzMinMatch {
			for j := lo; j < i; j++ {
				if data[j] != data[i] {
					continue
				}
				l := 0
				for l < maxLen && data[j+l] == data[i+l] {
					l++
				}
				if l > bestLen {
					bestLen, bestDist = l, i-j
					if l == maxLen {
						break
					}
				}
			}
		}
		if bestLen >= lzMinMatch {
			flushLits()
			var d [2]byte
			binary.LittleEndian.PutUint16(d[:], uint16(bestDist))
			out = append(out, 0x01, d[0], d[1], byte(bestLen-lzMinMatch))
			i += bestLen
			continue
		}
		lits = append(lits, data[i])
		i++
	}
	flushLits()
	return out
}

// DecodeLZ77 decompresses a buffer produced by EncodeLZ77.
func DecodeLZ77(enc []byte) ([]byte, error) {
	var out []byte
	i := 0
	for i < len(enc) {
		switch enc[i] {
		case 0x00:
			if i+2 > len(enc) {
				return nil, errors.New("compress: lz77 literal header truncated")
			}
			n := int(enc[i+1])
			if i+2+n > len(enc) {
				return nil, errors.New("compress: lz77 literals truncated")
			}
			out = append(out, enc[i+2:i+2+n]...)
			i += 2 + n
		case 0x01:
			if i+4 > len(enc) {
				return nil, errors.New("compress: lz77 match truncated")
			}
			dist := int(binary.LittleEndian.Uint16(enc[i+1 : i+3]))
			length := int(enc[i+3]) + lzMinMatch
			if dist <= 0 || dist > len(out) {
				return nil, fmt.Errorf("compress: lz77 bad distance %d at output %d", dist, len(out))
			}
			for k := 0; k < length; k++ {
				out = append(out, out[len(out)-dist])
			}
			i += 4
		default:
			return nil, fmt.Errorf("compress: lz77 bad opcode %#x at %d", enc[i], i)
		}
	}
	return out, nil
}
