// Package compress implements the encodings the paper discusses in its
// compression section (§III-D). Relational Fabric stores base data
// row-oriented and gathers scattered per-row byte ranges, so a scheme is
// fabric-compatible only if a single value can be decoded from a fixed,
// computable location: dictionary, frame-of-reference delta, and
// (block-wise) Huffman qualify. Run-length and LZ-family encodings require
// sequential decode state and are implemented here as the contrast cases
// the paper calls out — their codecs work, but they cannot serve scattered
// accesses.
package compress

// Codec describes one implemented encoding and its fabric compatibility.
type Codec struct {
	Name string
	// RandomAccess reports whether a value (or at worst its small block)
	// can be decoded from a computable offset — the property the fabric's
	// gather engine needs (§III-D).
	RandomAccess bool
	// Reason is the one-line justification recorded in the docs.
	Reason string
}

// Codecs enumerates the implemented encodings, in the order §III-D
// discusses them.
func Codecs() []Codec {
	return []Codec{
		{Name: "dictionary", RandomAccess: true, Reason: "fixed-width codes index a dictionary; any row's code sits at row*codeWidth"},
		{Name: "delta", RandomAccess: true, Reason: "frame-of-reference blocks hold fixed-width packed deltas; block and bit offset are computable"},
		{Name: "huffman", RandomAccess: true, Reason: "canonical codes with a block index; a block is decoded to reach a value"},
		{Name: "rle", RandomAccess: false, Reason: "run boundaries depend on the data; locating row i requires scanning runs"},
		{Name: "lz77", RandomAccess: false, Reason: "back-references need the full decode window; only sequential decompression"},
	}
}
