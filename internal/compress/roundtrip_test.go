package compress

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Edge-case round trips the property tests' random inputs rarely hit: empty
// columns, single-run RLE, and a dictionary whose cardinality spills the
// 1-byte and 2-byte code widths.

func TestEmptyInputRoundTrips(t *testing.T) {
	if d := EncodeDelta(nil); d.Rows() != 0 || len(d.DecodeAll()) != 0 {
		t.Errorf("delta: empty input decoded to %d rows", len(d.DecodeAll()))
	}
	dc, err := EncodeDict(nil, 4)
	if err != nil {
		t.Fatalf("dict: empty input rejected: %v", err)
	}
	if dc.Rows() != 0 || dc.Cardinality() != 0 || len(dc.DecodeAll()) != 0 {
		t.Errorf("dict: rows=%d card=%d", dc.Rows(), dc.Cardinality())
	}
	set, entries := dc.MatchCodes(func([]byte) bool { return true })
	if set.Len() != 0 || entries != 0 {
		t.Errorf("dict: empty dictionary matched %d codes over %d entries", set.Len(), entries)
	}
	rc, err := EncodeRLE(nil, 8)
	if err != nil {
		t.Fatalf("rle: empty input rejected: %v", err)
	}
	if rc.Rows() != 0 || rc.Runs() != 0 || len(rc.DecodeAll()) != 0 {
		t.Errorf("rle: rows=%d runs=%d", rc.Rows(), rc.Runs())
	}
	if sc := rc.ScanRuns(func([]byte) bool { return true }); sc.MatchedRows != 0 || sc.RunsEvaluated != 0 {
		t.Errorf("rle: empty column scanned %+v", sc)
	}
	hb, err := EncodeHuffman(nil, 256)
	if err != nil {
		t.Fatalf("huffman: empty input rejected: %v", err)
	}
	if out, err := hb.DecodeAll(); err != nil || len(out) != 0 {
		t.Errorf("huffman: empty decode = %d bytes, %v", len(out), err)
	}
	if out, err := DecodeLZ77(EncodeLZ77(nil)); err != nil || len(out) != 0 {
		t.Errorf("lz77: empty decode = %d bytes, %v", len(out), err)
	}
}

func TestRLESingleRunColumn(t *testing.T) {
	const rows, width = 1000, 4
	data := bytes.Repeat([]byte{7, 7, 7, 7}, rows)
	c, err := EncodeRLE(data, width)
	if err != nil {
		t.Fatal(err)
	}
	if c.Runs() != 1 {
		t.Fatalf("constant column encoded to %d runs", c.Runs())
	}
	if !bytes.Equal(c.DecodeAll(), data) {
		t.Error("single-run round trip failed")
	}
	// Predicate work is one run evaluation for a thousand rows.
	sc := c.ScanRuns(func(v []byte) bool { return v[0] == 7 })
	if sc.RunsEvaluated != 1 || sc.MatchedRows != rows {
		t.Errorf("ScanRuns = %+v, want 1 run / %d rows", sc, rows)
	}
	ranges, evaluated := c.MatchRuns(func(v []byte) bool { return v[0] == 7 })
	if evaluated != 1 || len(ranges) != 1 || ranges[0] != [2]int{0, rows} {
		t.Errorf("MatchRuns = %v over %d runs", ranges, evaluated)
	}
	if ranges, _ := c.MatchRuns(func(v []byte) bool { return false }); ranges != nil {
		t.Errorf("non-matching predicate returned ranges %v", ranges)
	}
}

// TestDictFullCardinalitySpill drives the dictionary across its code-width
// boundaries: 257 distinct values force 2-byte codes, 65537 force 4-byte
// codes, and an all-distinct column must still round-trip even though
// encoding it saves nothing.
func TestDictFullCardinalitySpill(t *testing.T) {
	distinct := func(rows int) []byte {
		data := make([]byte, rows*4)
		for r := 0; r < rows; r++ {
			binary.LittleEndian.PutUint32(data[r*4:], uint32(r))
		}
		return data
	}
	cases := []struct {
		rows, codeWidth int
	}{
		{256, 1},
		{257, 2},
		{1 << 16, 2},
		{1<<16 + 1, 4},
	}
	for _, c := range cases {
		data := distinct(c.rows)
		dc, err := EncodeDict(data, 4)
		if err != nil {
			t.Fatal(err)
		}
		if dc.Cardinality() != c.rows {
			t.Errorf("%d rows: cardinality %d", c.rows, dc.Cardinality())
		}
		if dc.CodeWidth() != c.codeWidth {
			t.Errorf("%d distinct values: code width %d, want %d", c.rows, dc.CodeWidth(), c.codeWidth)
		}
		if !dc.Equal(data) {
			t.Errorf("%d rows: full-cardinality round trip failed", c.rows)
		}
		// Full cardinality is the worst case: the dictionary holds every
		// value plus a code per row, strictly larger than the raw column.
		if dc.EncodedSize() <= len(data) {
			t.Errorf("%d rows: encoded %d <= raw %d — spilled dictionary cannot shrink", c.rows, dc.EncodedSize(), len(data))
		}
	}
}

func TestMatchCodesCodeDomain(t *testing.T) {
	// 4 distinct 2-byte values, many rows each.
	var data []byte
	for r := 0; r < 400; r++ {
		data = append(data, byte(r%4), 0xEE)
	}
	dc, err := EncodeDict(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	set, entries := dc.MatchCodes(func(entry []byte) bool { return entry[0] < 2 })
	if entries != 4 {
		t.Errorf("decoded %d entries, want 4 — decode cost must be per entry, not per row", entries)
	}
	if set.Len() != 2 {
		t.Errorf("matched %d codes, want 2", set.Len())
	}
	// The set agrees with a per-row decode.
	for r := 0; r < dc.Rows(); r++ {
		code, err := dc.CodeAt(r)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := dc.At(r)
		if got, want := set.Contains(code), v[0] < 2; got != want {
			t.Fatalf("row %d: code %d containment %v, value qualifies %v", r, code, got, want)
		}
	}
	if _, err := dc.CodeAt(-1); err == nil {
		t.Error("negative row accepted")
	}
	if _, err := dc.CodeAt(dc.Rows()); err == nil {
		t.Error("out-of-range row accepted")
	}
}

func TestCodeSetEdge(t *testing.T) {
	var nilSet *CodeSet
	if nilSet.Contains(0) || nilSet.Len() != 0 {
		t.Error("nil set claims membership")
	}
	s := &CodeSet{}
	s.Add(-1)
	if s.Len() != 0 {
		t.Error("negative code added")
	}
	s.Add(3)
	s.Add(3)
	s.Add(200)
	if s.Len() != 2 || !s.Contains(3) || !s.Contains(200) || s.Contains(4) || s.Contains(-1) {
		t.Errorf("set after adds: len=%d", s.Len())
	}
}

// Native fuzz targets for every codec: encode/decode must be lossless for
// arbitrary bytes (and arbitrary widths for the fixed-width codecs). `go
// test` runs the seed corpus; `go test -fuzz Fuzz<name>` explores.

func FuzzLZ77RoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("abcabcabcabc"))
	f.Add(bytes.Repeat([]byte{0}, 5000))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecodeLZ77(EncodeLZ77(data))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzHuffmanRoundTrip(f *testing.F) {
	f.Add([]byte{}, 64)
	f.Add([]byte("mississippi"), 4)
	f.Add(bytes.Repeat([]byte{9}, 300), 256)
	f.Fuzz(func(t *testing.T, data []byte, blockLen int) {
		if blockLen <= 0 || blockLen > 1<<16 {
			t.Skip()
		}
		hb, err := EncodeHuffman(data, blockLen)
		if err != nil {
			t.Fatal(err)
		}
		out, err := hb.DecodeAll()
		if err != nil {
			t.Fatalf("decode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzRLERoundTrip(f *testing.F) {
	f.Add([]byte{1, 1, 2, 2, 3}, 1)
	f.Add([]byte{}, 4)
	f.Fuzz(func(t *testing.T, data []byte, width int) {
		if width <= 0 || width > 64 || len(data)%width != 0 {
			t.Skip()
		}
		c, err := EncodeRLE(data, width)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c.DecodeAll(), data) {
			t.Fatal("round trip mismatch")
		}
		// ScanRuns over "always true" must credit every row.
		if sc := c.ScanRuns(func([]byte) bool { return true }); sc.MatchedRows != c.Rows() {
			t.Fatalf("ScanRuns credited %d of %d rows", sc.MatchedRows, c.Rows())
		}
	})
}

func FuzzDictRoundTrip(f *testing.F) {
	f.Add([]byte{5, 5, 6, 6}, 2)
	f.Add([]byte{}, 1)
	f.Fuzz(func(t *testing.T, data []byte, width int) {
		if width <= 0 || width > 64 || len(data)%width != 0 {
			t.Skip()
		}
		dc, err := EncodeDict(data, width)
		if err != nil {
			t.Fatal(err)
		}
		if !dc.Equal(data) {
			t.Fatal("round trip mismatch")
		}
		// Code-domain predicate agrees with value-domain on every row.
		set, _ := dc.MatchCodes(func(entry []byte) bool {
			return len(entry) > 0 && entry[0]&1 == 1
		})
		for r := 0; r < dc.Rows(); r++ {
			code, _ := dc.CodeAt(r)
			v, _ := dc.At(r)
			if set.Contains(code) != (v[0]&1 == 1) {
				t.Fatalf("row %d: code/value predicate disagreement", r)
			}
		}
	})
}

func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		values := make([]int64, len(raw)/8)
		for i := range values {
			values[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		d := EncodeDelta(values)
		got := d.DecodeAll()
		if len(got) != len(values) {
			t.Fatalf("decoded %d values, want %d", len(got), len(values))
		}
		for i := range values {
			if got[i] != values[i] {
				t.Fatalf("value %d: %d != %d", i, got[i], values[i])
			}
		}
	})
}
