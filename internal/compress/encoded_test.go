package compress_test

import (
	"math/rand"
	"testing"

	"rfabric/internal/compress"
	"rfabric/internal/dram"
	"rfabric/internal/engine"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

func encodedFixture(t *testing.T, rows int) (*table.Table, *compress.EncodedTable, *engine.System) {
	t.Helper()
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	sch := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "mode", Type: geometry.Char, Width: 10},
		geometry.Column{Name: "qty", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "note", Type: geometry.Char, Width: 24},
	)
	src := table.MustNew("t", sch, table.WithCapacity(rows),
		table.WithBaseAddr(sys.Arena.Alloc(int64(rows*sch.RowBytes()))))
	modes := []string{"AIR", "RAIL", "SHIP", "TRUCK"}
	notes := []string{"carefully packed", "quick deposits", "final requests"}
	rng := rand.New(rand.NewSource(31))
	for r := 0; r < rows; r++ {
		src.MustAppend(0,
			table.I64(int64(r)),
			table.Str(modes[rng.Intn(len(modes))]),
			table.I32(rng.Int31n(100)),
			table.Str(notes[rng.Intn(len(notes))]),
		)
	}
	enc, err := compress.EncodeTableDict(src, []int{1, 3}, sys.Arena.Alloc(int64(rows*sch.RowBytes())))
	if err != nil {
		t.Fatal(err)
	}
	return src, enc, sys
}

func TestEncodedTableDecodesToOriginal(t *testing.T) {
	src, enc, _ := encodedFixture(t, 500)
	for r := 0; r < src.NumRows(); r++ {
		for c := 0; c < src.Schema().NumColumns(); c++ {
			code, err := enc.Table.Get(r, c)
			if err != nil {
				t.Fatal(err)
			}
			got, err := enc.Decode(c, code)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := src.Get(r, c)
			if !got.Equal(want) {
				t.Fatalf("row %d col %d: %s != %s", r, c, got, want)
			}
		}
	}
}

func TestEncodedTableShrinksRows(t *testing.T) {
	src, enc, _ := encodedFixture(t, 100)
	if enc.SavedBytesPerRow() != (10-4)+(24-4) {
		t.Errorf("SavedBytesPerRow = %d", enc.SavedBytesPerRow())
	}
	if got, want := enc.Table.Schema().RowBytes(), src.Schema().RowBytes()-26; got != want {
		t.Errorf("encoded row bytes = %d, want %d", got, want)
	}
	if enc.DictionaryBytes() == 0 {
		t.Error("no dictionary footprint")
	}
}

// TestEphemeralViewOverEncodedColumns is the §III-D integration: the fabric
// ships dictionary codes instead of wide strings, moving far fewer bytes
// for the same logical result.
func TestEphemeralViewOverEncodedColumns(t *testing.T) {
	src, enc, sys := encodedFixture(t, 4000)

	scan := func(tbl *table.Table, cols ...int) (*fabric.Ephemeral, uint64) {
		geom := geometry.MustGeometry(tbl.Schema(), cols...)
		ev, err := sys.Fab.Configure(tbl, geom)
		if err != nil {
			t.Fatal(err)
		}
		before := sys.Fab.Stats().BytesShipped
		ev.Materialize()
		return ev, sys.Fab.Stats().BytesShipped - before
	}

	// Project the two string columns raw vs encoded.
	_, rawShipped := scan(src, 1, 3)
	evEnc, encShipped := scan(enc.Table, 1, 3)
	if encShipped*3 > rawShipped {
		t.Errorf("encoded view shipped %d bytes vs raw %d — expected > 3x reduction", encShipped, rawShipped)
	}

	// And the shipped codes decode to the original values.
	packed := evEnc.Materialize()
	pw := evEnc.PackedWidth()
	for r := 0; r < 20; r++ {
		row := packed[r*pw : (r+1)*pw]
		codeMode := table.DecodeColumn(enc.Table.Schema().Column(1), row[0:4])
		mode, err := enc.Decode(1, codeMode)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := src.Get(r, 1)
		if !mode.Equal(want) {
			t.Fatalf("row %d decoded mode %s, want %s", r, mode, want)
		}
	}
}

func TestEncodeTableValidation(t *testing.T) {
	sch := geometry.MustSchema(geometry.Column{Name: "a", Type: geometry.Int64, Width: 8})
	arena := dram.MustArena(0, 64)
	plain := table.MustNew("t", sch)
	plain.MustAppend(0, table.I64(1))
	if _, err := compress.EncodeTableDict(plain, nil, arena.Alloc(64)); err == nil {
		t.Error("empty column list accepted")
	}
	if _, err := compress.EncodeTableDict(plain, []int{5}, arena.Alloc(64)); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := compress.EncodeTableDict(plain, []int{0, 0}, arena.Alloc(64)); err == nil {
		t.Error("duplicate column accepted")
	}
	mv := table.MustNew("m", sch, table.WithMVCC())
	if _, err := compress.EncodeTableDict(mv, []int{0}, arena.Alloc(64)); err == nil {
		t.Error("MVCC table accepted")
	}
	if _, err := compress.EncodeTableDict(nil, []int{0}, 0); err == nil {
		t.Error("nil table accepted")
	}
}
