// Package table implements row-oriented base tables: the single physical
// layout Relational Fabric maintains. Rows are fixed-width and stored back
// to back in an append-only heap, the format the paper chooses because "the
// base data is stored in a row-oriented physical layout, to allow efficient
// data ingestion and updates" (ICDE 2023, §I). Tables may carry an MVCC
// header of two timestamps per row (§III-C) used by the fabric's hardware
// visibility filter.
package table

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"rfabric/internal/geometry"
)

// MVCCHeaderBytes is the physical size of the per-row MVCC header:
// an 8-byte begin timestamp followed by an 8-byte end timestamp.
const MVCCHeaderBytes = 16

// InfinityTS marks a row version that is still current (no end of validity).
const InfinityTS = math.MaxUint64

// Option configures table construction.
type Option func(*options)

type options struct {
	mvcc     bool
	capacity int
	baseAddr int64
}

// WithMVCC embeds the two-timestamp MVCC header in every row. Tables without
// it are immutable-after-append, matching the paper's read-only experiments.
func WithMVCC() Option { return func(o *options) { o.mvcc = true } }

// WithCapacity pre-allocates room for n rows.
func WithCapacity(n int) Option { return func(o *options) { o.capacity = n } }

// WithBaseAddr places the table at the given simulated physical address.
// Use a dram.Arena to obtain disjoint addresses for multiple objects.
func WithBaseAddr(addr int64) Option { return func(o *options) { o.baseAddr = addr } }

// Table is a row-oriented heap of fixed-width rows.
// It is not safe for concurrent mutation; the mvcc package layers
// transactional access on top.
type Table struct {
	name     string
	schema   *geometry.Schema
	mvcc     bool
	stride   int // physical bytes per row (header + payload)
	data     []byte
	rows     int
	baseAddr int64
	view     bool // read-only slice of another table's rows

	// version counts mutations (Append, AppendRaw, SetEndTS, Update) so
	// layers that cache derived layouts — the fabric group cache, the DB's
	// columnar copy — can detect staleness even when a writer holds the raw
	// *Table handle and bypasses the façade. Read/written atomically: the
	// façade serializes mutation, but cached-layout validity checks run on
	// concurrent read paths.
	version uint64
}

// New creates an empty table with the given schema.
func New(name string, schema *geometry.Schema, opts ...Option) (*Table, error) {
	if name == "" {
		return nil, errors.New("table: empty table name")
	}
	if schema == nil {
		return nil, errors.New("table: nil schema")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	t := &Table{
		name:     name,
		schema:   schema,
		mvcc:     o.mvcc,
		stride:   schema.RowBytes(),
		baseAddr: o.baseAddr,
	}
	if t.mvcc {
		t.stride += MVCCHeaderBytes
	}
	if o.capacity > 0 {
		t.data = make([]byte, 0, o.capacity*t.stride)
	}
	return t, nil
}

// MustNew is New panicking on error, for fixtures.
func MustNew(name string, schema *geometry.Schema, opts ...Option) *Table {
	t, err := New(name, schema, opts...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *geometry.Schema { return t.schema }

// HasMVCC reports whether rows carry the two-timestamp header.
func (t *Table) HasMVCC() bool { return t.mvcc }

// RowStride returns the physical bytes per row, including any MVCC header.
func (t *Table) RowStride() int { return t.stride }

// NumRows returns the number of physical row slots (all versions).
func (t *Table) NumRows() int { return t.rows }

// SizeBytes returns the heap size in bytes.
func (t *Table) SizeBytes() int { return len(t.data) }

// BaseAddr returns the simulated physical address of row 0.
func (t *Table) BaseAddr() int64 { return t.baseAddr }

// RowAddr returns the simulated physical address of row i.
func (t *Table) RowAddr(i int) int64 { return t.baseAddr + int64(i)*int64(t.stride) }

// IsView reports whether the table is a read-only slice of another table.
func (t *Table) IsView() bool { return t.view }

// Version returns the mutation counter: it advances on every Append,
// AppendRaw, SetEndTS, and Update, so a cached derived layout recorded at
// version v is stale exactly when Version() != v. Views report 0 — they are
// immutable windows whose parent carries the counter.
func (t *Table) Version() uint64 { return atomic.LoadUint64(&t.version) }

// bumpVersion marks one mutation.
func (t *Table) bumpVersion() { atomic.AddUint64(&t.version, 1) }

// Slice returns a read-only view of rows [start, end). The view shares the
// parent's bytes and keeps the parent's simulated addresses, so engines see
// the same physical placement they would scanning that range in place. Views
// reject mutation (Append, AppendRaw, SetEndTS, Update); the parallel
// executor hands one morsel view to each worker.
func (t *Table) Slice(start, end int) (*Table, error) {
	if start < 0 || end < start || end > t.rows {
		return nil, fmt.Errorf("table %s: slice [%d,%d) out of range [0,%d]", t.name, start, end, t.rows)
	}
	lo := start * t.stride
	hi := end * t.stride
	return &Table{
		name:     fmt.Sprintf("%s[%d:%d]", t.name, start, end),
		schema:   t.schema,
		mvcc:     t.mvcc,
		stride:   t.stride,
		data:     t.data[lo:hi:hi],
		rows:     end - start,
		baseAddr: t.baseAddr + int64(lo),
		view:     true,
	}, nil
}

// ColumnAddr returns the simulated address of column col in row i.
func (t *Table) ColumnAddr(i, col int) int64 {
	return t.RowAddr(i) + int64(t.payloadOff()) + int64(t.schema.Offset(col))
}

// Data exposes the raw heap. Callers must treat it as read-only; it exists
// so the fabric and storage layers can gather bytes without copies.
func (t *Table) Data() []byte { return t.data }

func (t *Table) payloadOff() int {
	if t.mvcc {
		return MVCCHeaderBytes
	}
	return 0
}

// Append encodes vals as one row and appends it, returning the row index.
// For MVCC tables the version is created with begin=beginTS, end=infinity;
// non-MVCC tables ignore beginTS.
func (t *Table) Append(beginTS uint64, vals ...Value) (int, error) {
	if t.view {
		return 0, fmt.Errorf("table %s: append to a read-only slice", t.name)
	}
	if len(vals) != t.schema.NumColumns() {
		return 0, fmt.Errorf("table %s: got %d values for %d columns", t.name, len(vals), t.schema.NumColumns())
	}
	start := len(t.data)
	t.data = append(t.data, make([]byte, t.stride)...)
	row := t.data[start : start+t.stride]
	if t.mvcc {
		binary.LittleEndian.PutUint64(row[0:8], beginTS)
		binary.LittleEndian.PutUint64(row[8:16], InfinityTS)
	}
	payload := row[t.payloadOff():]
	for i, v := range vals {
		if err := encodeValue(payload[t.schema.Offset(i):], t.schema.Column(i), v); err != nil {
			t.data = t.data[:start]
			return 0, fmt.Errorf("table %s column %q: %w", t.name, t.schema.Column(i).Name, err)
		}
	}
	idx := t.rows
	t.rows++
	t.bumpVersion()
	return idx, nil
}

// MustAppend is Append panicking on error, for fixtures.
func (t *Table) MustAppend(beginTS uint64, vals ...Value) int {
	i, err := t.Append(beginTS, vals...)
	if err != nil {
		panic(err)
	}
	return i
}

// AppendRaw appends a pre-encoded payload (schema.RowBytes() bytes, no MVCC
// header). It is the bulk-load path used by generators.
func (t *Table) AppendRaw(beginTS uint64, payload []byte) (int, error) {
	if t.view {
		return 0, fmt.Errorf("table %s: append to a read-only slice", t.name)
	}
	if len(payload) != t.schema.RowBytes() {
		return 0, fmt.Errorf("table %s: raw payload %d bytes, want %d", t.name, len(payload), t.schema.RowBytes())
	}
	start := len(t.data)
	t.data = append(t.data, make([]byte, t.stride)...)
	row := t.data[start : start+t.stride]
	if t.mvcc {
		binary.LittleEndian.PutUint64(row[0:8], beginTS)
		binary.LittleEndian.PutUint64(row[8:16], InfinityTS)
	}
	copy(row[t.payloadOff():], payload)
	idx := t.rows
	t.rows++
	t.bumpVersion()
	return idx, nil
}

// Get decodes column col of row i.
func (t *Table) Get(i, col int) (Value, error) {
	if i < 0 || i >= t.rows {
		return Value{}, fmt.Errorf("table %s: row %d out of range [0,%d)", t.name, i, t.rows)
	}
	if col < 0 || col >= t.schema.NumColumns() {
		return Value{}, fmt.Errorf("table %s: column %d out of range [0,%d)", t.name, col, t.schema.NumColumns())
	}
	row := t.rowBytes(i)[t.payloadOff():]
	return decodeValue(row[t.schema.Offset(col):], t.schema.Column(col)), nil
}

// MustGet is Get panicking on error, for tests.
func (t *Table) MustGet(i, col int) Value {
	v, err := t.Get(i, col)
	if err != nil {
		panic(err)
	}
	return v
}

// RowPayload returns the payload bytes (no MVCC header) of row i without
// copying.
func (t *Table) RowPayload(i int) []byte {
	return t.rowBytes(i)[t.payloadOff() : t.payloadOff()+t.schema.RowBytes()]
}

func (t *Table) rowBytes(i int) []byte {
	start := i * t.stride
	return t.data[start : start+t.stride]
}

// Timestamps returns the MVCC header of row i. Calling it on a non-MVCC
// table returns (0, InfinityTS): every row is always visible.
func (t *Table) Timestamps(i int) (begin, end uint64) {
	if !t.mvcc {
		return 0, InfinityTS
	}
	row := t.rowBytes(i)
	return binary.LittleEndian.Uint64(row[0:8]), binary.LittleEndian.Uint64(row[8:16])
}

// VisibleAt reports whether row version i is visible to a snapshot taken at
// ts: begin <= ts < end.
func (t *Table) VisibleAt(i int, ts uint64) bool {
	b, e := t.Timestamps(i)
	return b <= ts && ts < e
}

// SetEndTS closes the validity of row version i at ts (delete, or the old
// half of an update). It fails on non-MVCC tables and on already-dead rows.
func (t *Table) SetEndTS(i int, ts uint64) error {
	if t.view {
		return fmt.Errorf("table %s: SetEndTS on a read-only slice", t.name)
	}
	if !t.mvcc {
		return fmt.Errorf("table %s: SetEndTS on table without MVCC", t.name)
	}
	if i < 0 || i >= t.rows {
		return fmt.Errorf("table %s: row %d out of range [0,%d)", t.name, i, t.rows)
	}
	row := t.rowBytes(i)
	if cur := binary.LittleEndian.Uint64(row[8:16]); cur != InfinityTS {
		return fmt.Errorf("table %s: row %d already ended at %d", t.name, i, cur)
	}
	binary.LittleEndian.PutUint64(row[8:16], ts)
	t.bumpVersion()
	return nil
}

// Update ends version i at ts and appends a new version of vals beginning
// at ts, returning the new row index (append-only update, §III-C: "updates
// are handled by appending new rows to this base data").
func (t *Table) Update(i int, ts uint64, vals ...Value) (int, error) {
	if err := t.SetEndTS(i, ts); err != nil {
		return 0, err
	}
	return t.Append(ts, vals...)
}

// encodeValue writes v into dst according to col; dst must have col.Width
// bytes available.
func encodeValue(dst []byte, col geometry.Column, v Value) error {
	if v.Type != col.Type {
		return fmt.Errorf("value type %s does not match column type %s", v.Type, col.Type)
	}
	switch col.Type {
	case geometry.Int64:
		binary.LittleEndian.PutUint64(dst[:8], uint64(v.Int))
	case geometry.Int32, geometry.Date:
		if v.Int < math.MinInt32 || v.Int > math.MaxInt32 {
			return fmt.Errorf("value %d overflows 32-bit column", v.Int)
		}
		binary.LittleEndian.PutUint32(dst[:4], uint32(v.Int))
	case geometry.Float64:
		binary.LittleEndian.PutUint64(dst[:8], math.Float64bits(v.Float))
	case geometry.Char:
		if len(v.Bytes) > col.Width {
			return fmt.Errorf("string of %d bytes overflows CHAR(%d)", len(v.Bytes), col.Width)
		}
		n := copy(dst[:col.Width], v.Bytes)
		for ; n < col.Width; n++ {
			dst[n] = 0
		}
	default:
		return fmt.Errorf("unsupported column type %s", col.Type)
	}
	return nil
}

// decodeValue reads one value of col from src.
func decodeValue(src []byte, col geometry.Column) Value {
	switch col.Type {
	case geometry.Int64:
		return Value{Type: col.Type, Int: int64(binary.LittleEndian.Uint64(src[:8]))}
	case geometry.Int32, geometry.Date:
		return Value{Type: col.Type, Int: int64(int32(binary.LittleEndian.Uint32(src[:4])))}
	case geometry.Float64:
		return Value{Type: col.Type, Float: math.Float64frombits(binary.LittleEndian.Uint64(src[:8]))}
	case geometry.Char:
		out := make([]byte, col.Width)
		copy(out, src[:col.Width])
		return Value{Type: col.Type, Bytes: out}
	default:
		panic(fmt.Sprintf("table: decoding unsupported type %s", col.Type))
	}
}

// DecodeColumn decodes one value of col from the head of src. It is the
// single-value companion of DecodeRow, used by consumers of fabric-packed
// buffers whose layout is a geometry rather than a schema.
func DecodeColumn(col geometry.Column, src []byte) Value {
	return decodeValue(src, col)
}

// EncodeRow encodes vals into a fresh payload buffer laid out by schema.
func EncodeRow(schema *geometry.Schema, vals ...Value) ([]byte, error) {
	if len(vals) != schema.NumColumns() {
		return nil, fmt.Errorf("table: got %d values for %d columns", len(vals), schema.NumColumns())
	}
	buf := make([]byte, schema.RowBytes())
	for i, v := range vals {
		if err := encodeValue(buf[schema.Offset(i):], schema.Column(i), v); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeRow decodes every column of a payload buffer.
func DecodeRow(schema *geometry.Schema, payload []byte) ([]Value, error) {
	if len(payload) < schema.RowBytes() {
		return nil, fmt.Errorf("table: payload %d bytes, want at least %d", len(payload), schema.RowBytes())
	}
	out := make([]Value, schema.NumColumns())
	for i := range out {
		out[i] = decodeValue(payload[schema.Offset(i):], schema.Column(i))
	}
	return out, nil
}
