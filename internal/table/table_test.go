package table

import (
	"math"
	"testing"
	"testing/quick"

	"rfabric/internal/geometry"
)

func testSchema(t *testing.T) *geometry.Schema {
	t.Helper()
	return geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "tag", Type: geometry.Char, Width: 6},
		geometry.Column{Name: "qty", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "price", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "day", Type: geometry.Date, Width: 4},
	)
}

func TestAppendAndGetRoundTrip(t *testing.T) {
	tbl := MustNew("t", testSchema(t))
	want := []Value{I64(42), Str("hello"), I32(-7), F64(3.25), DateV(12345)}
	idx, err := tbl.Append(0, want...)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if idx != 0 || tbl.NumRows() != 1 {
		t.Fatalf("idx=%d rows=%d", idx, tbl.NumRows())
	}
	for c, w := range want {
		got := tbl.MustGet(0, c)
		if !got.Equal(w) {
			t.Errorf("col %d: got %s, want %s", c, got, w)
		}
	}
}

func TestAppendValidation(t *testing.T) {
	tbl := MustNew("t", testSchema(t))
	if _, err := tbl.Append(0, I64(1)); err == nil {
		t.Error("short row accepted")
	}
	if _, err := tbl.Append(0, I32(1), Str("x"), I32(2), F64(0), DateV(0)); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := tbl.Append(0, I64(1), Str("toolongvalue"), I32(2), F64(0), DateV(0)); err == nil {
		t.Error("oversized CHAR accepted")
	}
	big := int64(math.MaxInt32) + 1
	if _, err := tbl.Append(0, I64(1), Str("x"), Value{Type: geometry.Int32, Int: big}, F64(0), DateV(0)); err == nil {
		t.Error("int32 overflow accepted")
	}
	if tbl.NumRows() != 0 {
		t.Errorf("failed appends left %d rows", tbl.NumRows())
	}
}

func TestGetBounds(t *testing.T) {
	tbl := MustNew("t", testSchema(t))
	tbl.MustAppend(0, I64(1), Str("a"), I32(2), F64(3), DateV(4))
	if _, err := tbl.Get(1, 0); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := tbl.Get(-1, 0); err == nil {
		t.Error("negative row accepted")
	}
	if _, err := tbl.Get(0, 5); err == nil {
		t.Error("column out of range accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", testSchema(t)); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("t", nil); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestAddressing(t *testing.T) {
	s := testSchema(t)
	tbl := MustNew("t", s, WithBaseAddr(4096))
	tbl.MustAppend(0, I64(1), Str("a"), I32(2), F64(3), DateV(4))
	tbl.MustAppend(0, I64(2), Str("b"), I32(3), F64(4), DateV(5))
	if got := tbl.RowAddr(1); got != 4096+int64(s.RowBytes()) {
		t.Errorf("RowAddr(1) = %d", got)
	}
	if got := tbl.ColumnAddr(1, 2); got != tbl.RowAddr(1)+int64(s.Offset(2)) {
		t.Errorf("ColumnAddr(1,2) = %d", got)
	}
}

func TestMVCCHeaderAddressing(t *testing.T) {
	s := testSchema(t)
	tbl := MustNew("t", s, WithMVCC(), WithBaseAddr(0))
	if got, want := tbl.RowStride(), s.RowBytes()+MVCCHeaderBytes; got != want {
		t.Errorf("RowStride = %d, want %d", got, want)
	}
	tbl.MustAppend(3, I64(1), Str("a"), I32(2), F64(3), DateV(4))
	// Column addresses skip the header.
	if got := tbl.ColumnAddr(0, 0); got != MVCCHeaderBytes {
		t.Errorf("ColumnAddr(0,0) = %d, want %d", got, MVCCHeaderBytes)
	}
	b, e := tbl.Timestamps(0)
	if b != 3 || e != InfinityTS {
		t.Errorf("Timestamps = %d,%d", b, e)
	}
}

func TestVisibility(t *testing.T) {
	tbl := MustNew("t", testSchema(t), WithMVCC())
	tbl.MustAppend(5, I64(1), Str("a"), I32(2), F64(3), DateV(4))
	if err := tbl.SetEndTS(0, 9); err != nil {
		t.Fatalf("SetEndTS: %v", err)
	}
	cases := []struct {
		ts   uint64
		want bool
	}{{0, false}, {4, false}, {5, true}, {8, true}, {9, false}, {100, false}}
	for _, c := range cases {
		if got := tbl.VisibleAt(0, c.ts); got != c.want {
			t.Errorf("VisibleAt(ts=%d) = %v, want %v", c.ts, got, c.want)
		}
	}
}

func TestSetEndTSErrors(t *testing.T) {
	plain := MustNew("t", testSchema(t))
	plain.MustAppend(0, I64(1), Str("a"), I32(2), F64(3), DateV(4))
	if err := plain.SetEndTS(0, 1); err == nil {
		t.Error("SetEndTS on non-MVCC table accepted")
	}

	tbl := MustNew("t", testSchema(t), WithMVCC())
	tbl.MustAppend(1, I64(1), Str("a"), I32(2), F64(3), DateV(4))
	if err := tbl.SetEndTS(5, 2); err == nil {
		t.Error("SetEndTS out of range accepted")
	}
	if err := tbl.SetEndTS(0, 2); err != nil {
		t.Fatalf("SetEndTS: %v", err)
	}
	if err := tbl.SetEndTS(0, 3); err == nil {
		t.Error("double SetEndTS accepted")
	}
}

func TestUpdateAppendsVersion(t *testing.T) {
	tbl := MustNew("t", testSchema(t), WithMVCC())
	tbl.MustAppend(1, I64(1), Str("a"), I32(2), F64(3), DateV(4))
	newIdx, err := tbl.Update(0, 7, I64(1), Str("a"), I32(99), F64(3), DateV(4))
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if newIdx != 1 || tbl.NumRows() != 2 {
		t.Fatalf("newIdx=%d rows=%d", newIdx, tbl.NumRows())
	}
	// Old version visible before 7, new from 7.
	if !tbl.VisibleAt(0, 6) || tbl.VisibleAt(0, 7) {
		t.Error("old version visibility wrong")
	}
	if tbl.VisibleAt(1, 6) || !tbl.VisibleAt(1, 7) {
		t.Error("new version visibility wrong")
	}
	if got := tbl.MustGet(1, 2); got.Int != 99 {
		t.Errorf("new version qty = %d", got.Int)
	}
}

func TestNonMVCCAlwaysVisible(t *testing.T) {
	tbl := MustNew("t", testSchema(t))
	tbl.MustAppend(123, I64(1), Str("a"), I32(2), F64(3), DateV(4))
	b, e := tbl.Timestamps(0)
	if b != 0 || e != InfinityTS {
		t.Errorf("Timestamps = %d,%d", b, e)
	}
	if !tbl.VisibleAt(0, 0) || !tbl.VisibleAt(0, math.MaxUint64-1) {
		t.Error("non-MVCC row not always visible")
	}
}

func TestAppendRaw(t *testing.T) {
	s := testSchema(t)
	payload, err := EncodeRow(s, I64(9), Str("zz"), I32(8), F64(7.5), DateV(6))
	if err != nil {
		t.Fatalf("EncodeRow: %v", err)
	}
	tbl := MustNew("t", s)
	if _, err := tbl.AppendRaw(0, payload); err != nil {
		t.Fatalf("AppendRaw: %v", err)
	}
	if got := tbl.MustGet(0, 0); got.Int != 9 {
		t.Errorf("id = %d", got.Int)
	}
	if _, err := tbl.AppendRaw(0, payload[:3]); err == nil {
		t.Error("short raw payload accepted")
	}
}

// TestEncodeDecodeRowProperty: EncodeRow followed by DecodeRow is identity
// for arbitrary well-typed values.
func TestEncodeDecodeRowProperty(t *testing.T) {
	s := testSchema(t)
	check := func(id int64, tag []byte, qty int32, price float64, day int32) bool {
		if len(tag) > 6 {
			tag = tag[:6]
		}
		// NUL bytes inside a CHAR are padding-ambiguous by design; skip.
		for _, b := range tag {
			if b == 0 {
				return true
			}
		}
		in := []Value{I64(id), {Type: geometry.Char, Bytes: tag}, I32(qty), F64(price), DateV(day)}
		buf, err := EncodeRow(s, in...)
		if err != nil {
			return false
		}
		out, err := DecodeRow(s, buf)
		if err != nil {
			return false
		}
		for i := range in {
			if !out[i].Equal(in[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRowPayloadMatchesDecode: the zero-copy payload view decodes to the
// same values Get returns.
func TestRowPayloadMatchesDecode(t *testing.T) {
	s := testSchema(t)
	tbl := MustNew("t", s, WithMVCC())
	tbl.MustAppend(1, I64(5), Str("abc"), I32(6), F64(7.5), DateV(8))
	vals, err := DecodeRow(s, tbl.RowPayload(0))
	if err != nil {
		t.Fatalf("DecodeRow: %v", err)
	}
	for c := range vals {
		if !vals[c].Equal(tbl.MustGet(0, c)) {
			t.Errorf("col %d mismatch", c)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if I64(1).Compare(I64(2)) != -1 || I64(2).Compare(I64(1)) != 1 || I64(2).Compare(I64(2)) != 0 {
		t.Error("int compare wrong")
	}
	if F64(1.5).Compare(F64(2.5)) != -1 {
		t.Error("float compare wrong")
	}
	if Str("a").Compare(Str("b")) != -1 {
		t.Error("string compare wrong")
	}
	// Padding-insensitive CHAR comparison.
	padded := Value{Type: geometry.Char, Bytes: []byte{'a', 0, 0}}
	if padded.Compare(Str("a")) != 0 || !padded.Equal(Str("a")) {
		t.Error("padded CHAR compare wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("cross-type compare did not panic")
		}
	}()
	_ = I64(1).Compare(F64(1))
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"42":   I64(42),
		"-7":   I32(-7),
		"3.25": F64(3.25),
		"hi":   Str("hi"),
		"100":  DateV(100),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
