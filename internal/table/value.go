package table

import (
	"bytes"
	"fmt"
	"strconv"

	"rfabric/internal/geometry"
)

// Value is one typed cell. It is a small tagged union: exactly one of the
// payload fields is meaningful, selected by Type.
type Value struct {
	Type  geometry.ColumnType
	Int   int64   // Int64, Int32, Date
	Float float64 // Float64
	Bytes []byte  // Char (not NUL-padded; padding happens on encode)
}

// I64 builds a BIGINT value.
func I64(v int64) Value { return Value{Type: geometry.Int64, Int: v} }

// I32 builds an INT value.
func I32(v int32) Value { return Value{Type: geometry.Int32, Int: int64(v)} }

// F64 builds a DOUBLE value.
func F64(v float64) Value { return Value{Type: geometry.Float64, Float: v} }

// Str builds a CHAR value.
func Str(s string) Value { return Value{Type: geometry.Char, Bytes: []byte(s)} }

// DateV builds a DATE value from a day number (days since 1970-01-01).
func DateV(day int32) Value { return Value{Type: geometry.Date, Int: int64(day)} }

// Equal reports deep equality of type and payload.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case geometry.Int64, geometry.Int32, geometry.Date:
		return v.Int == o.Int
	case geometry.Float64:
		return v.Float == o.Float
	case geometry.Char:
		return bytes.Equal(trimPad(v.Bytes), trimPad(o.Bytes))
	default:
		return false
	}
}

// Compare orders two values of the same type: -1, 0, or +1.
// Comparing values of different types panics; the planner prevents it.
func (v Value) Compare(o Value) int {
	if v.Type != o.Type {
		panic(fmt.Sprintf("table: comparing %s with %s", v.Type, o.Type))
	}
	switch v.Type {
	case geometry.Int64, geometry.Int32, geometry.Date:
		switch {
		case v.Int < o.Int:
			return -1
		case v.Int > o.Int:
			return 1
		}
		return 0
	case geometry.Float64:
		switch {
		case v.Float < o.Float:
			return -1
		case v.Float > o.Float:
			return 1
		}
		return 0
	case geometry.Char:
		return bytes.Compare(trimPad(v.Bytes), trimPad(o.Bytes))
	default:
		panic(fmt.Sprintf("table: comparing unsupported type %s", v.Type))
	}
}

// String renders the value for humans.
func (v Value) String() string {
	switch v.Type {
	case geometry.Int64, geometry.Int32, geometry.Date:
		return strconv.FormatInt(v.Int, 10)
	case geometry.Float64:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case geometry.Char:
		return string(trimPad(v.Bytes))
	default:
		return fmt.Sprintf("Value(%s)", v.Type)
	}
}

func trimPad(b []byte) []byte {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return b[:end]
}
