// Package rfabric is a software reproduction of Relational Fabric
// (Transparent Data Transformation, ICDE 2023): row-oriented base tables
// whose arbitrary column groups are served on the fly by a simulated
// near-data transformation engine (Relational Memory), together with the
// row-store and column-store baselines the paper compares against, MVCC
// snapshot transactions filtered "in hardware", a storage-tier instance
// (Relational Storage), and the compression substrate the vision discusses.
//
// The quickstart mirrors the paper's Figure 3: define a row table, state a
// query, and consume the ephemeral column group the fabric produces:
//
//	db, _ := rfabric.Open(rfabric.DefaultConfig())
//	tbl, _ := db.CreateTable("t", schema, 100_000)
//	... load rows ...
//	res, _ := db.Query("SELECT key, num_fld1 FROM t WHERE key > 10")
//
// Every query also returns the modeled cost (simulated CPU cycles, bytes
// moved through the memory hierarchy), which is how the repository
// regenerates the paper's figures — see the experiments harness under
// cmd/rfbench and the benches in bench_test.go.
package rfabric

import (
	"rfabric/internal/cache"
	"rfabric/internal/dram"
	"rfabric/internal/engine"
	"rfabric/internal/expr"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/mvcc"
	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// Schema building blocks.
type (
	// Column declares one attribute of a table schema.
	Column = geometry.Column
	// ColumnType enumerates supported fixed-width types.
	ColumnType = geometry.ColumnType
	// Schema is an ordered set of columns with a derived row layout.
	Schema = geometry.Schema
	// Geometry identifies an arbitrary column group — the unit the fabric
	// transforms and ships.
	Geometry = geometry.Geometry
)

// Column types.
const (
	Int64   = geometry.Int64
	Int32   = geometry.Int32
	Float64 = geometry.Float64
	Char    = geometry.Char
	Date    = geometry.Date
)

// NewSchema lays out columns back to back and returns the schema.
func NewSchema(cols ...Column) (*Schema, error) { return geometry.NewSchema(cols...) }

// NewGeometry builds a column group over a schema by column indices.
func NewGeometry(s *Schema, cols ...int) (*Geometry, error) { return geometry.NewGeometry(s, cols...) }

// NewGeometryByName builds a column group by column names.
func NewGeometryByName(s *Schema, names ...string) (*Geometry, error) {
	return geometry.NewGeometryByName(s, names...)
}

// Values and tables.
type (
	// Value is one typed cell.
	Value = table.Value
	// Table is a row-oriented base table.
	Table = table.Table
)

// Value constructors.
var (
	// I64 builds a BIGINT value.
	I64 = table.I64
	// I32 builds an INT value.
	I32 = table.I32
	// F64 builds a DOUBLE value.
	F64 = table.F64
	// Str builds a CHAR value.
	Str = table.Str
	// DateV builds a DATE value from a day number.
	DateV = table.DateV
)

// Platform configuration.
type (
	// Config bundles the simulated platform: DRAM, caches, fabric.
	Config = engine.SystemConfig
	// DRAMConfig parameterizes the banked memory model.
	DRAMConfig = dram.Config
	// CacheConfig parameterizes the L1/L2 hierarchy and prefetcher.
	CacheConfig = cache.HierarchyConfig
	// FabricConfig parameterizes the Relational Memory engine.
	FabricConfig = fabric.Config
	// System is one simulated machine instance.
	System = engine.System
)

// DefaultConfig mirrors the paper's prototype proportions: 32 KB L1, 1 MB
// L2, a 4-stream prefetcher, 8 DRAM banks, and a fabric with a 2 MB buffer
// at a 1:15 clock ratio.
func DefaultConfig() Config { return engine.DefaultSystemConfig() }

// NewSystem builds a simulated machine.
func NewSystem(cfg Config) (*System, error) { return engine.NewSystem(cfg) }

// Queries and execution.
type (
	// Query is the logical query all engines execute.
	Query = engine.Query
	// AggTerm is one output aggregate.
	AggTerm = engine.AggTerm
	// Result is a query outcome with its modeled cost.
	Result = engine.Result
	// Breakdown is the modeled cost of one execution.
	Breakdown = engine.Breakdown
	// Executor is the common face of the ROW, COL, and RM paths.
	Executor = engine.Executor
	// RowEngine is the volcano-style tuple-at-a-time baseline.
	RowEngine = engine.RowEngine
	// ColEngine is the column-at-a-time baseline over a columnar copy.
	ColEngine = engine.ColEngine
	// RMEngine executes over Relational Memory's ephemeral views.
	RMEngine = engine.RMEngine
	// ParallelEngine is the morsel-parallel executor over worker-private
	// System clones.
	ParallelEngine = engine.ParallelEngine
	// ParallelConfig parameterizes morsel-parallel execution (worker count,
	// morsel size); see DB.SetParallel.
	ParallelConfig = engine.ParallelConfig
	// Optimizer is the constructive access-path chooser of §III-B.
	Optimizer = engine.Optimizer
	// OptimizerPlan is the optimizer's priced decision.
	OptimizerPlan = engine.Plan
	// Estimate is one access path's predicted cost.
	Estimate = engine.Estimate
)

// Predicates and aggregates.
type (
	// Predicate compares a column against a constant.
	Predicate = expr.Predicate
	// Conjunction is an AND of predicates.
	Conjunction = expr.Conjunction
	// CmpOp is a comparison operator.
	CmpOp = expr.CmpOp
	// AggKind names an aggregate function.
	AggKind = expr.AggKind
	// AggSpec is a plain-column aggregate, the shape the fabric's
	// aggregation pushdown supports.
	AggSpec = expr.AggSpec
	// Scalar is a per-row arithmetic expression.
	Scalar = expr.Scalar
	// ColRef references a column inside a scalar expression.
	ColRef = expr.ColRef
)

// Comparison operators.
const (
	Lt = expr.Lt
	Le = expr.Le
	Eq = expr.Eq
	Ne = expr.Ne
	Ge = expr.Ge
	Gt = expr.Gt
)

// Aggregate kinds.
const (
	Count = expr.Count
	Sum   = expr.Sum
	Min   = expr.Min
	Max   = expr.Max
	Avg   = expr.Avg
)

// Fabric surface.
type (
	// Ephemeral is a configured non-materialized column-group view — the
	// paper's ephemeral variable.
	Ephemeral = fabric.Ephemeral
	// FabricEngine is the Relational Memory device.
	FabricEngine = fabric.Engine
	// ViewOption configures an ephemeral view.
	ViewOption = fabric.ViewOption
)

// WithSnapshot pins an ephemeral view to an MVCC snapshot.
func WithSnapshot(ts uint64) ViewOption { return fabric.WithSnapshot(ts) }

// WithSelection pushes predicates into the fabric.
func WithSelection(preds Conjunction) ViewOption { return fabric.WithSelection(preds) }

// Observability surface.
type (
	// Registry holds the metric series the simulated fabric publishes;
	// attach one with DB.SetObserver and export it with WritePrometheus or
	// WriteJSON (or serve it through obs.NewMux / rfbench -serve).
	Registry = obs.Registry
	// Labels key one metric series (engine kind, table, component).
	Labels = obs.Labels
	// Tracer builds one query's span tree; engines accept one through
	// their Tracer field. Nil means zero tracing overhead.
	Tracer = obs.Tracer
	// Span is one node of a trace tree with modeled cycle and byte
	// attributions.
	Span = obs.Span
	// Trace is a finished EXPLAIN ANALYZE artifact; Render writes the
	// human-readable tree and WriteChrome exports Chrome Trace Event JSON
	// for Perfetto.
	Trace = obs.Trace
	// Timeline is the cycle-sampled hardware time series a traced query
	// records when run with WithTimeline.
	Timeline = obs.Timeline
	// TimelineSample is one sampled window of a Timeline.
	TimelineSample = obs.TimelineSample
	// StatStore aggregates per-statement statistics under normalized
	// fingerprints, pg_stat_statements-style; attach one with
	// DB.SetStatements and export it with Snapshot, WriteJSON,
	// WritePrometheus, or its /debug/statements handler.
	StatStore = obs.StatStore
	// StatementRecord is one fingerprint's aggregate in a StatStore
	// snapshot.
	StatementRecord = obs.StatementRecord
	// SlowLog is the ring of recent slow queries (DB.SetSlowThreshold),
	// each entry carrying the full trace of the offending run.
	SlowLog = obs.SlowLog
	// SlowEntry is one captured slow query.
	SlowEntry = obs.SlowEntry
	// Windows is the sliding-window telemetry aggregator: a lock-striped
	// per-second ring tracking rolling QPS, error rate, latency quantiles,
	// bytes moved, cache miss ratio, wall-clock, and allocation deltas.
	// Attach one with DB.SetWindows; serve it via its /debug/windows.json
	// handler or read Snapshot/Series directly.
	Windows = obs.Windows
	// WindowSnapshot is the merged scoreboard over a trailing window.
	WindowSnapshot = obs.WindowSnapshot
	// WindowSample is one query's contribution to the rolling window, for
	// callers feeding a Windows outside the DB facade.
	WindowSample = obs.WindowSample
	// AlertRule is one declarative SLO/alert condition over the windows
	// (threshold or burn-rate form); parse the text syntax with
	// ParseAlertRule.
	AlertRule = obs.Rule
	// AlertEngine evaluates alert rules on a ticker, driving each through
	// the pending → firing → resolved state machine.
	AlertEngine = obs.AlertEngine
	// Health is the /healthz + /readyz liveness/readiness surface.
	Health = obs.Health
)

// Version identifies this build in rfabric_build_info and /healthz.
const Version = "0.8.0"

// EngineSet names the execution paths this build ships, the engine-set
// label of rfabric_build_info.
const EngineSet = "ROW,COL,RM,IDX,PAR,AUTO"

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewStatStore creates an empty statement statistics store.
func NewStatStore() *StatStore { return obs.NewStatStore() }

// NewWindows creates a sliding-window telemetry aggregator retaining the
// trailing seconds seconds.
func NewWindows(seconds int) *Windows { return obs.NewWindows(seconds) }

// NewAlertEngine builds an alert engine over a Windows aggregator; start
// its evaluation ticker with Start and mount /debug/alerts with Handle.
func NewAlertEngine(win *Windows, rules ...AlertRule) (*AlertEngine, error) {
	return obs.NewAlertEngine(win, rules...)
}

// ParseAlertRule parses the one-line alert-rule syntax, e.g.
// "high_p99: p99_cycles > 5e6 for 10s over 30s severity page".
func ParseAlertRule(s string) (AlertRule, error) { return obs.ParseRule(s) }

// NewHealth builds the /healthz + /readyz surface (alerts may be nil).
func NewHealth(alerts *AlertEngine) *Health {
	return obs.NewHealth(Version, EngineSet, alerts)
}

// NewTracer starts a trace rooted at a span named name, for callers driving
// engines directly; DB.QueryTraced does this internally.
func NewTracer(name string) *Tracer { return obs.NewTracer(name) }

// Transactions.
type (
	// TxnManager coordinates snapshot-isolation transactions over one
	// MVCC table.
	TxnManager = mvcc.Manager
	// Txn is one transaction.
	Txn = mvcc.Txn
)

// NewTxnManager wraps an MVCC table.
func NewTxnManager(tbl *Table) (*TxnManager, error) { return mvcc.NewManager(tbl) }
