package rfabric

import (
	"math"
	"sync"
	"testing"

	"rfabric/internal/obs"
	"rfabric/internal/tpch"
)

// DB-level tests of the sliding-window telemetry and the alert lifecycle:
// the windows see exactly what the query path ran (successes, failures,
// modeled cycles, real wall-clock and allocation deltas), and an injected
// latency regression drives an alert rule through pending → firing →
// resolved on a shared fake clock.

// telemetryClock is the hand-advanced nanosecond clock the windows and the
// alert engine share in these tests.
type telemetryClock struct {
	mu sync.Mutex
	ns int64
}

func (c *telemetryClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *telemetryClock) AdvanceSec(s int64) {
	c.mu.Lock()
	c.ns += s * 1e9
	c.mu.Unlock()
}

func telemetryDB(t *testing.T, rows int) *DB {
	t.Helper()
	db, err := Open(DefaultConfig())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	tbl, err := db.CreateTable("lineitem", tpch.LineitemSchema(), rows)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := tpch.Generate(tbl, rows, 1); err != nil {
		t.Fatalf("generate: %v", err)
	}
	return db
}

func TestDBWindowsCaptureQueries(t *testing.T) {
	db := telemetryDB(t, 2000)
	clk := &telemetryClock{ns: 1000e9}
	win := obs.NewWindowsAt(60, clk.Now)
	db.SetWindows(win)
	if db.Windows() != win {
		t.Fatal("Windows accessor lost the aggregator")
	}

	res, err := db.Query("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if _, err := db.Execute("BOGUS", "lineitem", tpch.Q6()); err == nil {
		t.Fatal("bogus engine kind succeeded")
	}

	snap := win.Snapshot(0)
	if snap.Queries != 2 || snap.Errors != 1 {
		t.Fatalf("queries/errors = %d/%d, want 2/1", snap.Queries, snap.Errors)
	}
	if snap.MeanCycles != float64(res.Breakdown.TotalCycles) {
		t.Fatalf("windowed mean cycles %g != the one success's %d", snap.MeanCycles, res.Breakdown.TotalCycles)
	}
	if snap.MeanWallNanos <= 0 {
		t.Fatalf("mean wall ns = %g, want > 0 (real clock captured)", snap.MeanWallNanos)
	}
	if snap.MeanAllocBytes <= 0 {
		t.Fatalf("mean alloc bytes = %g, want > 0 (a parsed query allocates)", snap.MeanAllocBytes)
	}
	if snap.DRAMBytesPerSec <= 0 {
		t.Fatalf("dram bytes/s = %g, want > 0", snap.DRAMBytesPerSec)
	}

	pts := win.Series(0)
	if len(pts) != 1 || pts[0].Queries != 2 || pts[0].Errors != 1 {
		t.Fatalf("series = %+v", pts)
	}
	// A small table can serve entirely from cache (zero DRAM fills), but the
	// hierarchy must have seen demand loads.
	if pts[0].CacheLoads == 0 {
		t.Fatal("windows recorded no cache loads")
	}
}

// TestDBWindowedQuantileMatchesHistogram is the DB-level half of the
// acceptance criterion: feed the same per-query modeled cycles the windows
// recorded into a registry Histogram and the windowed p99 must agree
// exactly — both sides share the bucket grid and the interpolation.
func TestDBWindowedQuantileMatchesHistogram(t *testing.T) {
	db := telemetryDB(t, 2000)
	clk := &telemetryClock{ns: 2000e9}
	win := obs.NewWindowsAt(60, clk.Now)
	db.SetWindows(win)

	reg := obs.NewRegistry()
	h := reg.Histogram("cmp_cycles", nil)
	queries := []string{
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 40",
		"SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 10",
		"SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity < 2",
		"SELECT AVG(l_discount) FROM lineitem WHERE l_tax < 0.04",
	}
	for i, q := range queries {
		for _, kind := range []EngineKind{RM, ROW} {
			res, err := db.QueryOn(kind, q)
			if err != nil {
				t.Fatalf("%s on %s: %v", q, kind, err)
			}
			h.Observe(float64(res.Breakdown.TotalCycles))
		}
		if i%2 == 1 {
			clk.AdvanceSec(1)
		}
	}

	snap := win.Snapshot(0)
	if snap.Queries != uint64(2*len(queries)) {
		t.Fatalf("windows saw %d queries, want %d", snap.Queries, 2*len(queries))
	}
	for _, c := range []struct {
		name string
		q    float64
		got  float64
	}{
		{"p50", 0.50, snap.P50Cycles},
		{"p95", 0.95, snap.P95Cycles},
		{"p99", 0.99, snap.P99Cycles},
	} {
		if want := h.Quantile(c.q); c.got != want {
			t.Fatalf("windowed %s = %g, Histogram.Quantile = %g — must match exactly", c.name, c.got, want)
		}
	}
}

// TestLatencyRegressionAlertLifecycle injects a latency regression into a
// live DB and proves the full alert state machine: healthy traffic keeps
// the rule inactive; a sustained regression walks it pending → firing
// (flipping /readyz through FiringPage); recovery resolves it, with the
// resolve recorded in the firing history.
func TestLatencyRegressionAlertLifecycle(t *testing.T) {
	db := telemetryDB(t, 24_000)
	clk := &telemetryClock{ns: 5000e9}
	win := obs.NewWindowsAt(120, clk.Now)
	db.SetWindows(win)

	// The healthy workload scans a tiny table; the regression is a full scan
	// of the large one — ~50x the rows, so the p99 cycle jump dominates the
	// bucket quantile's within-bucket error (one power-of-4 bucket).
	small, err := db.CreateTable("orders", tpch.OrdersSchema(), 500)
	if err != nil {
		t.Fatalf("orders: %v", err)
	}
	if err := tpch.GenerateOrders(small, 500, 1); err != nil {
		t.Fatalf("generate orders: %v", err)
	}
	cheap := "SELECT COUNT(*) FROM orders WHERE o_custkey < 100"
	expensive := "SELECT SUM(l_extendedprice), AVG(l_discount) FROM lineitem WHERE l_quantity < 100"
	cheapRes, err := db.Query(cheap)
	if err != nil {
		t.Fatalf("cheap query: %v", err)
	}
	expRes, err := db.Query(expensive)
	if err != nil {
		t.Fatalf("expensive query: %v", err)
	}
	cheapCyc := float64(cheapRes.Breakdown.TotalCycles)
	expCyc := float64(expRes.Breakdown.TotalCycles)
	// The windowed p99 is a bucket estimate: it may read up to 4x the cheap
	// cost (top of cheap's bucket) and as low as a quarter of the expensive
	// cost (bottom of its bucket). A 16x gap keeps the threshold separable.
	if expCyc < 16*cheapCyc {
		t.Fatalf("regression not expensive enough to alert on: cheap=%g expensive=%g", cheapCyc, expCyc)
	}
	threshold := math.Sqrt(cheapCyc * expCyc)
	clk.AdvanceSec(30) // drain the calibration traffic out of the rule window

	eng, err := obs.NewAlertEngineAt(win, clk.Now, obs.Rule{
		Name: "latency_regression", Metric: "p99_cycles", Threshold: threshold,
		ForSeconds: 5, WindowSeconds: 20, Severity: "page",
	})
	if err != nil {
		t.Fatalf("alert engine: %v", err)
	}
	health := NewHealth(eng)
	health.SetReady(true)

	state := func() string { return eng.Snapshot().Rules[0].State }

	// Phase 1 — healthy: cheap queries only.
	for i := 0; i < 3; i++ {
		if _, err := db.Query(cheap); err != nil {
			t.Fatal(err)
		}
		clk.AdvanceSec(1)
	}
	eng.Evaluate()
	if got := state(); got != "inactive" {
		t.Fatalf("healthy traffic: state = %s, want inactive (p99 %g vs threshold %g)",
			got, win.Snapshot(20).P99Cycles, threshold)
	}
	if !health.Ready() {
		t.Fatal("healthy: not ready")
	}

	// Phase 2 — regression lands: first breach goes pending, not firing.
	if _, err := db.Query(expensive); err != nil {
		t.Fatal(err)
	}
	eng.Evaluate()
	if got := state(); got != "pending" {
		t.Fatalf("first breach: state = %s, want pending", got)
	}
	if !health.Ready() {
		t.Fatal("pending alert must not flip readiness")
	}

	// Phase 3 — regression sustained past the hold: firing, readiness off.
	for i := 0; i < 6; i++ {
		clk.AdvanceSec(1)
		if _, err := db.Query(expensive); err != nil {
			t.Fatal(err)
		}
		eng.Evaluate()
	}
	if got := state(); got != "firing" {
		t.Fatalf("sustained regression: state = %s, want firing", got)
	}
	if health.Ready() {
		t.Fatal("firing page alert must flip /readyz off")
	}
	if got := eng.Snapshot().Rules[0].FiredTotal; got != 1 {
		t.Fatalf("fired_total = %d, want 1", got)
	}

	// Phase 4 — regression fixed: slow samples age out of the 20s window
	// while cheap traffic continues; the alert resolves and readiness
	// returns.
	clk.AdvanceSec(25)
	for i := 0; i < 3; i++ {
		if _, err := db.Query(cheap); err != nil {
			t.Fatal(err)
		}
		eng.Evaluate()
		clk.AdvanceSec(1)
	}
	if got := state(); got != "inactive" {
		t.Fatalf("after recovery: state = %s, want inactive (p99 %g)", got, win.Snapshot(20).P99Cycles)
	}
	if !health.Ready() {
		t.Fatal("recovered: readiness must return")
	}

	// The history tells the whole story, ending in a resolve.
	hist := eng.Snapshot().History
	if len(hist) < 3 {
		t.Fatalf("history too short: %+v", hist)
	}
	last := hist[len(hist)-1]
	if last.To != "inactive" || !last.Resolve {
		t.Fatalf("final transition = %+v, want resolved inactive", last)
	}
	sawFiring := false
	for _, tr := range hist {
		if tr.To == "firing" && tr.Rule == "latency_regression" {
			sawFiring = true
		}
	}
	if !sawFiring {
		t.Fatalf("history never fired: %+v", hist)
	}
}

// TestDBWindowsJoinAndTracedPaths: the join entry point and the traced
// entry point feed the same windows, and traces carry the new wall/alloc
// fields.
func TestDBWindowsJoinAndTracedPaths(t *testing.T) {
	db := telemetryDB(t, 2000)
	clk := &telemetryClock{ns: 9000e9}
	win := obs.NewWindowsAt(60, clk.Now)
	db.SetWindows(win)

	orders, err := db.CreateTable("orders", tpch.OrdersSchema(), 500)
	if err != nil {
		t.Fatalf("orders: %v", err)
	}
	if err := tpch.GenerateOrders(orders, 500, 1); err != nil {
		t.Fatalf("generate orders: %v", err)
	}

	if _, err := db.Query(
		"SELECT COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey WHERE l_quantity < 30"); err != nil {
		t.Fatalf("join: %v", err)
	}
	if win.Snapshot(0).Queries != 1 {
		t.Fatal("join path did not reach the windows")
	}

	_, trace, err := db.QueryTraced("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25")
	if err != nil {
		t.Fatalf("traced: %v", err)
	}
	if trace.WallNanos <= 0 {
		t.Fatalf("trace wall ns = %d, want > 0", trace.WallNanos)
	}
	if trace.AllocBytes == 0 {
		t.Fatal("trace alloc bytes = 0, want > 0")
	}
	if win.Snapshot(0).Queries != 2 {
		t.Fatal("traced path did not reach the windows")
	}
}
