package rfabric

import (
	"time"

	"rfabric/internal/engine"
	"rfabric/internal/obs"
	"rfabric/internal/plan"
	"rfabric/internal/sql"
)

// Statement-statistics surface of the DB façade: a pg_stat_statements-style
// store fed by every SQL entry point (Query, QueryOn, QueryTraced,
// Prepared.Run), and a slow-query log capturing full traces for outliers.
// The off-path contract matches the metrics registry's: with no store
// attached (or a disabled one) and no slow threshold, a query pays two
// atomic loads and zero allocations for this whole subsystem —
// fingerprinting itself is gated behind those loads.

// SetStatements attaches a statement-statistics store. Every subsequent SQL
// query records under its normalized fingerprint: calls, errors, modeled
// cycle and wall-clock histograms, rows, bytes per hierarchy level, the
// engine that ran, and the optimizer's estimated-vs-actual accuracy. Nil
// detaches.
func (db *DB) SetStatements(s *obs.StatStore) { db.stats = s }

// Statements returns the attached statement store (nil when none).
func (db *DB) Statements() *obs.StatStore { return db.stats }

// SetSlowThreshold arms the slow-query log: any SQL query whose modeled
// cycles exceed the threshold is captured — with its full EXPLAIN ANALYZE
// trace — into SlowLog. Zero disarms. The capture tracer charges no modeled
// cycles, so arming the log never perturbs results.
func (db *DB) SetSlowThreshold(cycles uint64) {
	db.mu.Lock()
	if db.slow == nil && cycles > 0 {
		db.slow = obs.NewSlowLog(0)
	}
	db.mu.Unlock()
	db.slowThreshold.Store(cycles)
}

// SlowLog returns the slow-query ring (nil until SetSlowThreshold arms it).
func (db *DB) SlowLog() *obs.SlowLog { return db.slow }

// slowCycles is the armed threshold (0 = off), readable off the hot path.
func (db *DB) slowCycles() uint64 { return db.slowThreshold.Load() }

// stmtCtx carries one statement's recording state from parse to finish. A
// nil *stmtCtx (recording fully off) no-ops every method.
type stmtCtx struct {
	query      string
	norm       string
	fp         uint64
	start      time.Time
	allocStart uint64      // heap-alloc mark, for the per-query alloc delta
	record     bool        // statement store enabled at begin time
	slow       uint64      // armed threshold at begin time
	tr         *obs.Tracer // slow-capture tracer; nil when the caller traces

	est    *plan.Est // access-path estimate for the engine that ran
	actSel float64
	hasSel bool
}

// beginStatement opens per-statement recording. Returns nil — the
// zero-overhead path — unless the statement store is enabled or the slow
// log is armed. wantTracer attaches a capture tracer for the slow log;
// callers that already trace pass false and hand finish their own trace.
func (db *DB) beginStatement(query string, wantTracer bool) *stmtCtx {
	record := !db.stats.Disabled()
	slow := db.slowCycles()
	if !record && slow == 0 {
		return nil
	}
	c := &stmtCtx{query: query, record: record, slow: slow, start: time.Now()}
	if record {
		c.norm, c.fp = sql.Fingerprint(query)
		c.allocStart = obs.HeapAllocBytes()
	}
	if slow > 0 && wantTracer {
		c.tr = obs.NewTracer("query")
		c.tr.Root().SetAttr("sql", query)
	}
	return c
}

// tracer returns the slow-capture tracer to thread into the run (nil-safe;
// nil when capture is off or the caller traces already).
func (c *stmtCtx) tracer() *obs.Tracer {
	if c == nil {
		return nil
	}
	return c.tr
}

// noteSingle records the estimated-vs-actual pair for a finished
// single-table run: the optimizer's pricing of the access path that ran,
// and the observed selectivity.
func (c *stmtCtx) noteSingle(db *DB, t *dbTable, q Query, res *Result) {
	if c == nil || !c.record || res == nil {
		return
	}
	c.est = db.estimateObserved(c, t, q, res)
	if res.RowsScanned > 0 {
		c.actSel = float64(res.RowsPassed) / float64(res.RowsScanned)
		c.hasSel = c.est != nil
	}
}

// noteJoin records the pair for a finished join run: the estimate is the
// sum of the per-side pricings (stamped by AUTO during planning, or here
// for explicit engines), the selectivity comparison is the probe side's.
func (c *stmtCtx) noteJoin(db *DB, kind EngineKind, jp *engine.JoinPlan, res *Result) {
	if c == nil || !c.record || res == nil {
		return
	}
	db.fillJoinEstimates(kind, jp)
	total := 0.0
	priced := true
	addSide := func(n *plan.Node) {
		if n == nil || n.Est == nil {
			priced = false
			return
		}
		total += n.Est.Cycles
	}
	addSide(jp.Probe.Node)
	for k := range jp.Stages {
		addSide(jp.Stages[k].Side.Node)
	}
	if priced {
		c.est = &plan.Est{Engine: res.Engine, Cycles: total}
	}
	if n := jp.Probe.Node; c.est != nil && n != nil && n.Est != nil && n.Act != nil && n.Act.RowsScanned > 0 {
		c.est.Selectivity = n.Est.Selectivity
		c.actSel = n.Act.Selectivity()
		c.hasSel = true
	}
}

// finish folds the statement into the store and, when it crossed the slow
// threshold, into the slow log. trace is the caller's trace when it ran one
// (QueryTraced); otherwise the capture tracer's tree is used.
func (c *stmtCtx) finish(db *DB, res *Result, err error, trace *Trace) {
	if c == nil {
		return
	}
	var cycles uint64
	var rowsScan, rowsRet int64
	var engineName string
	if res != nil {
		cycles = res.Breakdown.TotalCycles
		rowsScan = res.RowsScanned
		engineName = res.Engine
		switch {
		case len(res.Groups) > 0:
			rowsRet = int64(len(res.Groups))
		case len(res.Aggs) > 0:
			rowsRet = 1
		default:
			rowsRet = res.RowsPassed
		}
	}
	isSlow := c.slow > 0 && cycles > c.slow

	if c.record {
		sm := obs.StatSample{
			Fingerprint: c.fp,
			Text:        c.norm,
			Engine:      engineName,
			Err:         err != nil,
			Slow:        isSlow,
			Cycles:      cycles,
			WallNanos:   time.Since(c.start).Nanoseconds(),
			AllocBytes:  obs.HeapAllocBytes() - c.allocStart,
			RowsRet:     rowsRet,
			RowsScan:    rowsScan,
		}
		if res != nil {
			sm.BytesDRAM = res.Breakdown.BytesFromDRAM
			sm.BytesCPU = res.Breakdown.BytesToCPU
		}
		if c.est != nil {
			sm.EstCycles = c.est.Cycles
		}
		if c.hasSel {
			sm.HasSel = true
			sm.EstSelectivity = c.est.Selectivity
			sm.ActSelectivity = c.actSel
		}
		db.stats.Record(sm)

		// Feedback eviction: when the run's pricing missed by more than
		// the armed q-error threshold, drop the statement's cached plan so
		// the next preparation replans with observed-selectivity feedback.
		if err == nil && sm.EstCycles > 0 && cycles > 0 {
			if th := db.feedbackThreshold(); th > 0 &&
				plan.QError(sm.EstCycles, float64(cycles)) > th {
				db.evictPlan(c.fp)
			}
		}
	}

	if isSlow && db.slow != nil {
		if trace == nil && c.tr != nil {
			trace = &Trace{
				Query:       c.query,
				Engine:      engineName,
				TotalCycles: cycles,
				Root:        c.tr.Root(),
			}
		}
		db.slow.Add(obs.SlowEntry{
			Query:     c.query,
			Engine:    engineName,
			Cycles:    cycles,
			Threshold: c.slow,
			WallNanos: time.Since(c.start).Nanoseconds(),
			RowsScan:  rowsScan,
			RowsRet:   rowsRet,
			Trace:     trace,
		})
	}
}
